#include "cascade/exact.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "cascade/world.h"
#include "jaccard/jaccard.h"
#include "util/bitvector.h"

namespace soi {

namespace {

Status CheckSize(const ProbGraph& graph) {
  if (graph.num_edges() > kMaxExactEdges) {
    return Status::InvalidArgument(
        "exact enumeration limited to " + std::to_string(kMaxExactEdges) +
        " edges, got " + std::to_string(graph.num_edges()));
  }
  return Status::OK();
}

Status CheckSeeds(const ProbGraph& graph, std::span<const NodeId> seeds) {
  return ValidateSeedSet(seeds, graph.num_nodes());
}

// Enumerates all worlds; calls fn(reachable_sorted, world_probability).
template <typename Fn>
void EnumerateWorlds(const ProbGraph& graph, std::span<const NodeId> seeds,
                     Fn&& fn) {
  const EdgeId m = graph.num_edges();
  BitVector mask(m);
  for (uint64_t bits = 0; bits < (uint64_t{1} << m); ++bits) {
    double prob = 1.0;
    mask.Reset();
    for (EdgeId e = 0; e < m; ++e) {
      if ((bits >> e) & 1) {
        prob *= graph.EdgeProb(e);
        mask.Set(e);
      } else {
        prob *= 1.0 - graph.EdgeProb(e);
      }
    }
    if (prob == 0.0) continue;
    const Csr world = WorldFromMask(graph, mask);
    fn(ReachableFromSet(world, seeds), prob);
  }
}

}  // namespace

Result<std::vector<std::pair<std::vector<NodeId>, double>>>
ExactCascadeDistribution(const ProbGraph& graph,
                         std::span<const NodeId> seeds) {
  SOI_RETURN_IF_ERROR(CheckSize(graph));
  SOI_RETURN_IF_ERROR(CheckSeeds(graph, seeds));
  std::map<std::vector<NodeId>, double> dist;
  EnumerateWorlds(graph, seeds,
                  [&](std::vector<NodeId> cascade, double prob) {
                    dist[std::move(cascade)] += prob;
                  });
  std::vector<std::pair<std::vector<NodeId>, double>> out(dist.begin(),
                                                          dist.end());
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  return out;
}

Result<double> ExactExpectedCost(const ProbGraph& graph,
                                 std::span<const NodeId> seeds,
                                 std::span<const NodeId> candidate) {
  SOI_RETURN_IF_ERROR(CheckSize(graph));
  SOI_RETURN_IF_ERROR(CheckSeeds(graph, seeds));
  std::vector<NodeId> cand(candidate.begin(), candidate.end());
  std::sort(cand.begin(), cand.end());
  double cost = 0.0;
  EnumerateWorlds(graph, seeds, [&](const std::vector<NodeId>& cascade,
                                    double prob) {
    cost += prob * JaccardDistance(cascade, cand);
  });
  return cost;
}

Result<double> ExactReliability(const ProbGraph& graph, NodeId s, NodeId t) {
  SOI_RETURN_IF_ERROR(CheckSize(graph));
  const NodeId seeds[1] = {s};
  SOI_RETURN_IF_ERROR(CheckSeeds(graph, seeds));
  if (t >= graph.num_nodes()) return Status::OutOfRange("t out of range");
  double reliability = 0.0;
  EnumerateWorlds(graph, seeds,
                  [&](const std::vector<NodeId>& cascade, double prob) {
                    if (std::binary_search(cascade.begin(), cascade.end(), t)) {
                      reliability += prob;
                    }
                  });
  return reliability;
}

Result<double> ExactExpectedSpread(const ProbGraph& graph,
                                   std::span<const NodeId> seeds) {
  SOI_RETURN_IF_ERROR(CheckSize(graph));
  SOI_RETURN_IF_ERROR(CheckSeeds(graph, seeds));
  double spread = 0.0;
  EnumerateWorlds(graph, seeds,
                  [&](const std::vector<NodeId>& cascade, double prob) {
                    spread += prob * static_cast<double>(cascade.size());
                  });
  return spread;
}

Result<std::pair<std::vector<NodeId>, double>> ExactTypicalCascade(
    const ProbGraph& graph, std::span<const NodeId> seeds) {
  SOI_ASSIGN_OR_RETURN(const auto dist, ExactCascadeDistribution(graph, seeds));

  // Universe = union of all possible cascades; the optimal median never
  // includes a node outside it (such a node increases the symmetric
  // difference with every cascade).
  std::vector<NodeId> universe;
  for (const auto& [cascade, prob] : dist) {
    universe.insert(universe.end(), cascade.begin(), cascade.end());
  }
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()),
                 universe.end());
  if (universe.size() > 20) {
    return Status::InvalidArgument("cascade union too large for exact median");
  }
  const size_t u = universe.size();

  // Each cascade as a bitmask over universe positions.
  std::vector<std::pair<uint32_t, double>> masks;
  masks.reserve(dist.size());
  for (const auto& [cascade, prob] : dist) {
    uint32_t mask = 0;
    for (NodeId v : cascade) {
      const size_t pos = static_cast<size_t>(
          std::lower_bound(universe.begin(), universe.end(), v) -
          universe.begin());
      mask |= uint32_t{1} << pos;
    }
    masks.emplace_back(mask, prob);
  }

  double best_cost = 2.0;
  uint32_t best_mask = 0;
  for (uint32_t candidate = 0; candidate < (uint32_t{1} << u); ++candidate) {
    double cost = 0.0;
    const int cand_size = __builtin_popcount(candidate);
    for (const auto& [mask, prob] : masks) {
      const int inter = __builtin_popcount(candidate & mask);
      const int uni = cand_size + __builtin_popcount(mask) - inter;
      const double d =
          uni == 0 ? 0.0 : 1.0 - static_cast<double>(inter) / uni;
      cost += prob * d;
    }
    if (cost < best_cost - 1e-15) {
      best_cost = cost;
      best_mask = candidate;
    }
  }

  std::vector<NodeId> best_set;
  for (size_t pos = 0; pos < u; ++pos) {
    if ((best_mask >> pos) & 1) best_set.push_back(universe[pos]);
  }
  return std::make_pair(std::move(best_set), best_cost);
}

}  // namespace soi
