#ifndef SOI_CASCADE_EXACT_H_
#define SOI_CASCADE_EXACT_H_

#include <span>
#include <utility>
#include <vector>

#include "graph/prob_graph.h"
#include "util/status.h"

namespace soi {

/// Exact possible-world computations by enumerating all 2^m worlds.
/// Exponential by design (the quantities are #P-hard, Theorem 1); these are
/// ground-truth oracles for tests and for the Theorem 1 / Theorem 2
/// verification experiments. All functions reject graphs with more than
/// `kMaxExactEdges` edges.

inline constexpr EdgeId kMaxExactEdges = 20;

/// The exact distribution of the cascade from `seeds`: pairs of
/// (sorted node set, probability), aggregated over worlds and sorted by
/// descending probability. Probabilities sum to 1.
Result<std::vector<std::pair<std::vector<NodeId>, double>>>
ExactCascadeDistribution(const ProbGraph& graph, std::span<const NodeId> seeds);

/// Exact expected cost rho_{G,seeds}(C) = E[d_J(R_seeds(G), C)] (paper §2.2).
Result<double> ExactExpectedCost(const ProbGraph& graph,
                                 std::span<const NodeId> seeds,
                                 std::span<const NodeId> candidate);

/// Exact s-t reliability: probability that t is reachable from s.
Result<double> ExactReliability(const ProbGraph& graph, NodeId s, NodeId t);

/// Exact expected spread sigma(seeds).
Result<double> ExactExpectedSpread(const ProbGraph& graph,
                                   std::span<const NodeId> seeds);

/// The exact optimal typical cascade (Problem 1): the subset of V minimizing
/// the expected Jaccard distance, found by enumerating all subsets of the
/// union of possible cascades. Returns (optimal set, optimal cost).
/// Rejects instances whose cascade-union exceeds 20 nodes.
Result<std::pair<std::vector<NodeId>, double>> ExactTypicalCascade(
    const ProbGraph& graph, std::span<const NodeId> seeds);

}  // namespace soi

#endif  // SOI_CASCADE_EXACT_H_
