#ifndef SOI_CASCADE_SIMULATE_H_
#define SOI_CASCADE_SIMULATE_H_

#include <span>
#include <vector>

#include "graph/prob_graph.h"
#include "util/rng.h"

namespace soi {

/// Direct Independent Cascade simulation (paper §1): seeds activate at time
/// 0; a node activated at time t gets one chance to activate each inactive
/// out-neighbor, succeeding independently with the edge probability.
///
/// The returned activation set has the same distribution as
/// ReachableFromSet(SampleWorld(g), seeds); both are provided because the
/// direct simulation only flips coins on edges leaving activated nodes
/// (cheaper for small cascades) and records activation *times*, which the
/// action-log simulator needs.

/// One activation event: node v became active at discrete `step`
/// (0 for seeds).
struct Activation {
  NodeId node;
  uint32_t step;
};

/// Runs one IC cascade; returns the activated nodes sorted ascending.
std::vector<NodeId> SimulateCascade(const ProbGraph& graph,
                                    std::span<const NodeId> seeds, Rng* rng);

/// Runs one IC cascade returning (node, step) events in activation order
/// (BFS order: nondecreasing step).
std::vector<Activation> SimulateCascadeWithTimes(const ProbGraph& graph,
                                                 std::span<const NodeId> seeds,
                                                 Rng* rng);

/// Monte-Carlo estimate of the expected spread sigma(seeds) over
/// `num_samples` independent cascades.
double EstimateSpread(const ProbGraph& graph, std::span<const NodeId> seeds,
                      uint32_t num_samples, Rng* rng);

}  // namespace soi

#endif  // SOI_CASCADE_SIMULATE_H_
