#include "cascade/simulate.h"

#include <algorithm>

#include "util/bitvector.h"

namespace soi {

std::vector<Activation> SimulateCascadeWithTimes(const ProbGraph& graph,
                                                 std::span<const NodeId> seeds,
                                                 Rng* rng) {
  std::vector<Activation> events;
  BitVector active(graph.num_nodes());
  for (NodeId s : seeds) {
    SOI_CHECK(s < graph.num_nodes());
    if (active.TestAndSet(s)) events.push_back({s, 0});
  }
  // BFS frontier by read cursor; steps are nondecreasing in `events`.
  for (size_t read = 0; read < events.size(); ++read) {
    const Activation cur = events[read];
    const auto nbrs = graph.OutNeighbors(cur.node);
    const auto probs = graph.OutProbs(cur.node);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      if (active.Test(v)) continue;
      if (!rng->NextBernoulli(probs[i])) continue;
      active.Set(v);
      events.push_back({v, cur.step + 1});
    }
  }
  return events;
}

std::vector<NodeId> SimulateCascade(const ProbGraph& graph,
                                    std::span<const NodeId> seeds, Rng* rng) {
  const std::vector<Activation> events =
      SimulateCascadeWithTimes(graph, seeds, rng);
  std::vector<NodeId> out;
  out.reserve(events.size());
  for (const Activation& a : events) out.push_back(a.node);
  std::sort(out.begin(), out.end());
  return out;
}

double EstimateSpread(const ProbGraph& graph, std::span<const NodeId> seeds,
                      uint32_t num_samples, Rng* rng) {
  SOI_CHECK(num_samples > 0);
  uint64_t total = 0;
  for (uint32_t i = 0; i < num_samples; ++i) {
    total += SimulateCascadeWithTimes(graph, seeds, rng).size();
  }
  return static_cast<double>(total) / num_samples;
}

}  // namespace soi
