#include "service/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "service/protocol.h"

namespace soi::service {

namespace {

Status WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("write failed: ") +
                             std::strerror(errno));
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

// True when `fd` has data ready right now (used to decide whether to keep
// accumulating a batch or flush what we have).
bool ReadableNow(int fd) {
  struct pollfd pfd{fd, POLLIN, 0};
  return ::poll(&pfd, 1, /*timeout_ms=*/0) > 0 &&
         (pfd.revents & (POLLIN | POLLHUP)) != 0;
}

// Best-effort recovery of the correlation id from a line that failed to
// parse, so the client can still match the error to its request.
int64_t SalvageId(std::string_view line) {
  const size_t key = line.find("\"id\"");
  if (key == std::string_view::npos) return -1;
  size_t pos = line.find(':', key + 4);
  if (pos == std::string_view::npos) return -1;
  ++pos;
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  bool negative = false;
  if (pos < line.size() && line[pos] == '-') {
    negative = true;
    ++pos;
  }
  if (pos >= line.size() || line[pos] < '0' || line[pos] > '9') return -1;
  int64_t value = 0;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    value = value * 10 + (line[pos] - '0');
    ++pos;
  }
  return negative ? -value : value;
}

// Best-effort recovery of the envelope version from a malformed line, so a
// v2 client gets its parse errors in the v2 error shape.
int SalvageVersion(std::string_view line) {
  const size_t key = line.find("\"v\"");
  if (key == std::string_view::npos) return 1;
  size_t pos = line.find(':', key + 3);
  if (pos == std::string_view::npos) return 1;
  ++pos;
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  return pos < line.size() && line[pos] == '2' ? 2 : 1;
}

class StreamServer {
 public:
  // Exactly one of `engine` / `handle` is set: a fixed engine, or a
  // hot-swappable handle acquired per batch.
  StreamServer(Engine* engine, const EngineHandle* handle, int in_fd,
               int out_fd, uint32_t batch_max,
               const std::function<void()>* poll)
      : engine_(engine),
        handle_(handle),
        in_fd_(in_fd),
        out_fd_(out_fd),
        batch_max_(batch_max),
        poll_(poll) {}

  Status Serve() {
    std::string buffer;
    char chunk[1 << 16];
    bool eof = false;
    while (!eof) {
      const ssize_t n = ::read(in_fd_, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) {
          // A signal woke the read (e.g. SIGHUP requesting a reload): give
          // the poll hook a chance before blocking again.
          if (poll_ != nullptr && *poll_) (*poll_)();
          continue;
        }
        return Status::IOError(std::string("read failed: ") +
                               std::strerror(errno));
      }
      if (poll_ != nullptr && *poll_) (*poll_)();
      if (n == 0) {
        eof = true;
      } else {
        buffer.append(chunk, static_cast<size_t>(n));
      }
      size_t start = 0;
      size_t nl;
      while ((nl = buffer.find('\n', start)) != std::string::npos) {
        SOI_RETURN_IF_ERROR(
            HandleLine(std::string_view(buffer).substr(start, nl - start)));
        start = nl + 1;
      }
      buffer.erase(0, start);
      // Nothing more buffered right now: execute what we have instead of
      // stalling the client's responses.
      if (!eof && !pending_.empty() && !ReadableNow(in_fd_)) {
        SOI_RETURN_IF_ERROR(Flush());
      }
    }
    // A trailing line without '\n' still counts.
    if (!buffer.empty()) SOI_RETURN_IF_ERROR(HandleLine(buffer));
    return Flush();
  }

 private:
  Status HandleLine(std::string_view line) {
    // Skip blank lines (a trailing newline at EOF is not a request).
    const bool blank =
        line.find_first_not_of(" \t\r") == std::string_view::npos;
    if (blank) return Status::OK();
    Result<ProtocolRequest> parsed = ParseRequestLine(line);
    if (!parsed.ok()) {
      SOI_OBS_COUNTER_ADD("service/lines_malformed", 1);
      // Responses stay in request order: run everything queued before this
      // line, then report the parse error.
      SOI_RETURN_IF_ERROR(Flush());
      return WriteAll(out_fd_,
                      FormatResponseLine(SalvageId(line), SalvageVersion(line),
                                         Result<Response>(parsed.status())));
    }
    pending_.push_back(std::move(*parsed));
    if (pending_.size() >= batch_max_) return Flush();
    return Status::OK();
  }

  Status Flush() {
    if (pending_.empty()) return Status::OK();
    std::vector<Request> requests;
    requests.reserve(pending_.size());
    for (const ProtocolRequest& p : pending_) requests.push_back(p.request);
    // Acquire per batch: the shared_ptr pins the engine (and any snapshot
    // mapping it anchors) for the whole batch, so a concurrent Swap()
    // retires the old engine only after this flush completes.
    std::shared_ptr<Engine> acquired;
    Engine* engine = engine_;
    if (handle_ != nullptr) {
      acquired = handle_->Acquire();
      engine = acquired.get();
    }
    Result<std::vector<Result<Response>>> batch = engine->RunBatch(requests);
    std::string out;
    if (batch.ok()) {
      for (size_t i = 0; i < pending_.size(); ++i) {
        out += FormatResponseLine(pending_[i].id, pending_[i].version,
                                  (*batch)[i]);
      }
    } else {
      // Batch-level rejection (admission control): every queued request
      // gets the same error response.
      for (const ProtocolRequest& p : pending_) {
        out += FormatResponseLine(p.id, p.version,
                                  Result<Response>(batch.status()));
      }
    }
    pending_.clear();
    return WriteAll(out_fd_, out);
  }

  Engine* engine_;
  const EngineHandle* handle_;
  int in_fd_;
  int out_fd_;
  uint32_t batch_max_;
  const std::function<void()>* poll_;
  std::vector<ProtocolRequest> pending_;
};

uint32_t EffectiveBatchMax(const Engine& engine, const ServeOptions& options) {
  const uint32_t engine_max = engine.options().max_batch;
  if (options.batch_max == 0) return engine_max;
  return std::min(options.batch_max, engine_max);
}

Status ServeStreamImpl(Engine* engine, const EngineHandle* handle, int in_fd,
                       int out_fd, const ServeOptions& options) {
  std::shared_ptr<Engine> acquired;
  const Engine* current = engine;
  if (handle != nullptr) {
    acquired = handle->Acquire();
    current = acquired.get();
  }
  StreamServer server(engine, handle, in_fd, out_fd,
                      EffectiveBatchMax(*current, options), &options.poll);
  return server.Serve();
}

}  // namespace

Status ServeStream(Engine* engine, int in_fd, int out_fd,
                   const ServeOptions& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  return ServeStreamImpl(engine, nullptr, in_fd, out_fd, options);
}

Status ServeStream(const EngineHandle* handle, int in_fd, int out_fd,
                   const ServeOptions& options) {
  if (handle == nullptr) {
    return Status::InvalidArgument("engine handle must not be null");
  }
  return ServeStreamImpl(nullptr, handle, in_fd, out_fd, options);
}

namespace {

Status ServeTcpAny(Engine* engine, const EngineHandle* handle, uint16_t port,
                   const ServeOptions& options, uint16_t* bound_port) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return Status::IOError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const Status status = Status::IOError(
        "bind to 127.0.0.1:" + std::to_string(port) + " failed: " +
        std::strerror(errno));
    ::close(listen_fd);
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) == 0 &&
      bound_port != nullptr) {
    *bound_port = ntohs(addr.sin_port);
  }
  if (::listen(listen_fd, /*backlog=*/16) < 0) {
    const Status status = Status::IOError(std::string("listen failed: ") +
                                          std::strerror(errno));
    ::close(listen_fd);
    return status;
  }
  if (options.on_listening) options.on_listening(ntohs(addr.sin_port));
  uint32_t served = 0;
  while (options.max_connections == 0 || served < options.max_connections) {
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) {
      if (errno == EINTR) {
        if (options.poll) options.poll();
        continue;
      }
      const Status status = Status::IOError(std::string("accept failed: ") +
                                            std::strerror(errno));
      ::close(listen_fd);
      return status;
    }
    SOI_OBS_COUNTER_ADD("service/connections", 1);
    const Status status = ServeStreamImpl(engine, handle, conn_fd, conn_fd,
                                          options);
    ::close(conn_fd);
    ++served;
    if (options.poll) options.poll();
    if (!status.ok()) {
      // One broken connection does not stop the server; log via metrics and
      // keep accepting.
      SOI_OBS_COUNTER_ADD("service/connections_failed", 1);
    }
  }
  ::close(listen_fd);
  return Status::OK();
}

}  // namespace

Status ServeTcp(Engine* engine, uint16_t port, const ServeOptions& options,
                uint16_t* bound_port) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  return ServeTcpAny(engine, nullptr, port, options, bound_port);
}

Status ServeTcp(const EngineHandle* handle, uint16_t port,
                const ServeOptions& options, uint16_t* bound_port) {
  if (handle == nullptr) {
    return Status::InvalidArgument("engine handle must not be null");
  }
  return ServeTcpAny(nullptr, handle, port, options, bound_port);
}

}  // namespace soi::service
