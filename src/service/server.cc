#include "service/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "service/event_loop.h"

namespace soi::service {

namespace {

uint32_t EffectiveBatchMax(const Engine& engine, const ServeOptions& options) {
  const uint32_t engine_max = engine.options().max_batch;
  if (options.batch_max == 0) return engine_max;
  return std::min(options.batch_max, engine_max);
}

// Resolves user-facing ServeOptions against the currently installed engine
// into the event loop's concrete knobs. 0-valued "unlimited" sizes map to
// SIZE_MAX so the loop only ever compares against one threshold form.
EventLoopOptions MakeLoopOptions(Engine* engine, const EngineHandle* handle,
                                 const ServeOptions& options) {
  std::shared_ptr<Engine> acquired;
  const Engine* current = engine;
  if (handle != nullptr) {
    acquired = handle->Acquire();
    current = acquired.get();
  }
  EventLoopOptions loop;
  loop.batch_max = EffectiveBatchMax(*current, options);
  loop.batch_window_us = options.batch_window_us;
  loop.max_line_bytes = options.max_line_bytes == 0
                            ? std::numeric_limits<size_t>::max()
                            : options.max_line_bytes;
  loop.max_output_bytes = options.max_output_bytes == 0
                              ? std::numeric_limits<size_t>::max()
                              : options.max_output_bytes;
  loop.poll = &options.poll;
  return loop;
}

Status ServeStreamImpl(Engine* engine, const EngineHandle* handle, int in_fd,
                       int out_fd, const ServeOptions& options) {
  EventLoop loop(engine, handle, MakeLoopOptions(engine, handle, options));
  return loop.ServePair(in_fd, out_fd);
}

// Creates the bound, listening socket on 127.0.0.1:`port` and reports the
// chosen port (both to `*bound_port` and the on_listening callback).
Status OpenListener(uint16_t port, const ServeOptions& options,
                    uint16_t* bound_port, int* listen_fd_out) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return Status::IOError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const Status status = Status::IOError(
        "bind to 127.0.0.1:" + std::to_string(port) + " failed: " +
        std::strerror(errno));
    ::close(listen_fd);
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) == 0 &&
      bound_port != nullptr) {
    *bound_port = ntohs(addr.sin_port);
  }
  if (::listen(listen_fd, /*backlog=*/128) < 0) {
    const Status status = Status::IOError(std::string("listen failed: ") +
                                          std::strerror(errno));
    ::close(listen_fd);
    return status;
  }
  if (options.on_listening) options.on_listening(ntohs(addr.sin_port));
  *listen_fd_out = listen_fd;
  return Status::OK();
}

Status ServeTcpAny(Engine* engine, const EngineHandle* handle, uint16_t port,
                   const ServeOptions& options, uint16_t* bound_port) {
  int listen_fd = -1;
  SOI_RETURN_IF_ERROR(OpenListener(port, options, bound_port, &listen_fd));
  EventLoop loop(engine, handle, MakeLoopOptions(engine, handle, options));
  return loop.ServeListener(listen_fd, options.max_connections);
}

}  // namespace

Status ServeStream(Engine* engine, int in_fd, int out_fd,
                   const ServeOptions& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  return ServeStreamImpl(engine, nullptr, in_fd, out_fd, options);
}

Status ServeStream(const EngineHandle* handle, int in_fd, int out_fd,
                   const ServeOptions& options) {
  if (handle == nullptr) {
    return Status::InvalidArgument("engine handle must not be null");
  }
  return ServeStreamImpl(nullptr, handle, in_fd, out_fd, options);
}

Status ServeTcp(Engine* engine, uint16_t port, const ServeOptions& options,
                uint16_t* bound_port) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  return ServeTcpAny(engine, nullptr, port, options, bound_port);
}

Status ServeTcp(const EngineHandle* handle, uint16_t port,
                const ServeOptions& options, uint16_t* bound_port) {
  if (handle == nullptr) {
    return Status::InvalidArgument("engine handle must not be null");
  }
  return ServeTcpAny(nullptr, handle, port, options, bound_port);
}

Status ServeTcpSequential(Engine* engine, uint16_t port,
                          const ServeOptions& options, uint16_t* bound_port) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  int listen_fd = -1;
  SOI_RETURN_IF_ERROR(OpenListener(port, options, bound_port, &listen_fd));
  uint32_t served = 0;
  while (options.max_connections == 0 || served < options.max_connections) {
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) {
      if (errno == EINTR) {
        if (options.poll) options.poll();
        continue;
      }
      const Status status = Status::IOError(std::string("accept failed: ") +
                                            std::strerror(errno));
      ::close(listen_fd);
      return status;
    }
    SOI_OBS_COUNTER_ADD("service/connections", 1);
    const Status status =
        ServeStreamImpl(engine, nullptr, conn_fd, conn_fd, options);
    ::close(conn_fd);
    ++served;
    if (options.poll) options.poll();
    if (!status.ok()) {
      // One broken connection does not stop the server; log via metrics and
      // keep accepting.
      SOI_OBS_COUNTER_ADD("service/connections_failed", 1);
    }
  }
  ::close(listen_fd);
  return Status::OK();
}

}  // namespace soi::service
