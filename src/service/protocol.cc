#include "service/protocol.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <optional>
#include <utility>
#include <vector>

namespace soi::service {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough for the flat request schema above (no
// external dependency). Numbers are doubles; request ids and node ids are
// integers well inside the double-exact range.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SOI_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON input");
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' in JSON");
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return value;
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Status::InvalidArgument("expected string key in JSON object");
      }
      SOI_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipSpace();
      if (!Consume(':')) {
        return Status::InvalidArgument("expected ':' in JSON object");
      }
      SOI_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      value.object.emplace_back(std::move(key.string), std::move(member));
      SkipSpace();
      if (Consume('}')) return value;
      if (!Consume(',')) {
        return Status::InvalidArgument("expected ',' or '}' in JSON object");
      }
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return value;
    while (true) {
      SOI_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      value.array.push_back(std::move(element));
      SkipSpace();
      if (Consume(']')) return value;
      if (!Consume(',')) {
        return Status::InvalidArgument("expected ',' or ']' in JSON array");
      }
    }
  }

  Result<JsonValue> ParseString() {
    ++pos_;  // '"'
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c != '\\') {
        value.string.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': value.string.push_back('"'); break;
        case '\\': value.string.push_back('\\'); break;
        case '/': value.string.push_back('/'); break;
        case 'b': value.string.push_back('\b'); break;
        case 'f': value.string.push_back('\f'); break;
        case 'n': value.string.push_back('\n'); break;
        case 'r': value.string.push_back('\r'); break;
        case 't': value.string.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument("truncated \\u escape in JSON");
          }
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<uint32_t>(h - 'A' + 10);
            else return Status::InvalidArgument("bad \\u escape in JSON");
          }
          // UTF-8 encode (basic multilingual plane only; enough for a
          // protocol whose strings are ASCII identifiers).
          if (code < 0x80) {
            value.string.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            value.string.push_back(static_cast<char>(0xC0 | (code >> 6)));
            value.string.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            value.string.push_back(static_cast<char>(0xE0 | (code >> 12)));
            value.string.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            value.string.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Status::InvalidArgument("bad escape in JSON string");
      }
    }
    return Status::InvalidArgument("unterminated JSON string");
  }

  Result<JsonValue> ParseBool() {
    JsonValue value;
    value.kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      value.boolean = true;
      pos_ += 4;
      return value;
    }
    if (text_.substr(pos_, 5) == "false") {
      value.boolean = false;
      pos_ += 5;
      return value;
    }
    return Status::InvalidArgument("bad literal in JSON");
  }

  Result<JsonValue> ParseNull() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return JsonValue{};
    }
    return Status::InvalidArgument("bad literal in JSON");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Status::InvalidArgument("bad number '" + token + "' in JSON");
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = v;
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Schema helpers.
// ---------------------------------------------------------------------------

Result<int64_t> RequireInt(const JsonValue& object, std::string_view field,
                           int64_t fallback, bool required) {
  const JsonValue* v = object.Find(field);
  if (v == nullptr) {
    if (required) {
      return Status::InvalidArgument("missing required field \"" +
                                     std::string(field) + "\"");
    }
    return fallback;
  }
  if (v->kind != JsonValue::Kind::kNumber ||
      v->number != std::floor(v->number)) {
    return Status::InvalidArgument("field \"" + std::string(field) +
                                   "\" must be an integer");
  }
  return static_cast<int64_t>(v->number);
}

Result<std::vector<NodeId>> RequireSeeds(const JsonValue& object) {
  const JsonValue* v = object.Find("seeds");
  if (v == nullptr || v->kind != JsonValue::Kind::kArray) {
    return Status::InvalidArgument(
        "missing required field \"seeds\" (array of node ids)");
  }
  std::vector<NodeId> seeds;
  seeds.reserve(v->array.size());
  for (const JsonValue& e : v->array) {
    if (e.kind != JsonValue::Kind::kNumber || e.number != std::floor(e.number) ||
        e.number < 0.0 || e.number > static_cast<double>(UINT32_MAX)) {
      return Status::InvalidArgument(
          "\"seeds\" entries must be non-negative 32-bit node ids");
    }
    seeds.push_back(static_cast<NodeId>(e.number));
  }
  return seeds;
}

// Integer serialization without the std::to_string temporary: to_chars into
// a stack buffer, then append. The output bytes are identical (both emit
// minimal decimal digits), but a warm output buffer absorbs the append
// without touching the heap.
template <typename Int>
void AppendInt(std::string* out, Int v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, res.ptr);
}

void AppendNodes(std::string* out, const std::vector<NodeId>& nodes) {
  out->push_back('[');
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i != 0) out->push_back(',');
    AppendInt(out, nodes[i]);
  }
  out->push_back(']');
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out->append(buf);
}

void AppendEscaped(std::string* out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

struct ResponseBodyWriter {
  std::string* out;

  void operator()(const TypicalCascadeResponse& r) const {
    out->append(",\"op\":\"typical\",\"cascade\":");
    AppendNodes(out, r.cascade);
    out->append(",\"in_sample_cost\":");
    AppendDouble(out, r.in_sample_cost);
    out->append(",\"mean_sample_size\":");
    AppendDouble(out, r.mean_sample_size);
  }
  void operator()(const CascadeResponse& r) const {
    out->append(",\"op\":\"cascade\",\"cascade\":");
    AppendNodes(out, r.cascade);
  }
  void operator()(const SpreadResponse& r) const {
    out->append(",\"op\":\"spread\",\"spread\":");
    AppendDouble(out, r.spread);
  }
  void operator()(const SeedSelectResponse& r) const {
    out->append(",\"op\":\"seed_select\",\"seeds\":");
    AppendNodes(out, r.seeds);
    out->append(",\"objective\":");
    AppendDouble(out, r.objective);
  }
  void operator()(const ReliabilityResponse& r) const {
    out->append(",\"op\":\"reliability\",\"nodes\":");
    AppendNodes(out, r.nodes);
  }
  void operator()(const UpdateResponse& r) const {
    out->append(",\"op\":\"update\",\"applied\":");
    AppendInt(out, r.applied);
    out->append(",\"affected_worlds\":");
    AppendInt(out, r.affected_worlds);
    out->append(",\"affected_nodes\":");
    AppendInt(out, r.affected_nodes);
    out->append(",\"drift\":");
    AppendInt(out, r.drift);
  }
};

// One element of an update request's "ops" array:
//   {"op":"insert","src":U,"dst":V,"prob":P}
//   {"op":"delete","src":U,"dst":V}
//   {"op":"prob","src":U,"dst":V,"prob":P}
Result<GraphUpdate> ParseUpdateOp(const JsonValue& op) {
  if (op.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("\"ops\" entries must be JSON objects");
  }
  const JsonValue* kind = op.Find("op");
  if (kind == nullptr || kind->kind != JsonValue::Kind::kString) {
    return Status::InvalidArgument(
        "update op missing \"op\" (insert|delete|prob)");
  }
  GraphUpdate out;
  bool needs_prob = true;
  if (kind->string == "insert") {
    out.kind = UpdateKind::kEdgeInsert;
  } else if (kind->string == "delete") {
    out.kind = UpdateKind::kEdgeDelete;
    needs_prob = false;
  } else if (kind->string == "prob") {
    out.kind = UpdateKind::kProbUpdate;
  } else {
    return Status::InvalidArgument("unknown update op \"" + kind->string +
                                   "\" (expected insert|delete|prob)");
  }
  SOI_ASSIGN_OR_RETURN(const int64_t src,
                       RequireInt(op, "src", 0, /*required=*/true));
  SOI_ASSIGN_OR_RETURN(const int64_t dst,
                       RequireInt(op, "dst", 0, /*required=*/true));
  if (src < 0 || src > static_cast<int64_t>(UINT32_MAX) || dst < 0 ||
      dst > static_cast<int64_t>(UINT32_MAX)) {
    return Status::InvalidArgument(
        "\"src\"/\"dst\" must be non-negative 32-bit node ids");
  }
  out.src = static_cast<NodeId>(src);
  out.dst = static_cast<NodeId>(dst);
  if (needs_prob) {
    const JsonValue* prob = op.Find("prob");
    if (prob == nullptr || prob->kind != JsonValue::Kind::kNumber) {
      return Status::InvalidArgument("update op \"" + kind->string +
                                     "\" requires a numeric \"prob\"");
    }
    out.prob = prob->number;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Fast in-situ request parser (the serving hot path).
//
// Recognizes the flat request subset every real client emits — one JSON
// object, known keys, plain integers/doubles, escape-free strings — as
// string_view slices over the connection buffer, with zero heap
// allocations. ANY deviation (unknown or duplicate keys, escapes, "update"
// batches, malformed syntax, failed validation) makes it bail out and the
// canonical JsonReader-based parser runs instead. The fast path therefore
// never changes observable behavior: it only accepts lines the canonical
// parser would accept, producing an identical ProtocolRequest, and every
// error message keeps coming from the one canonical implementation.
// ---------------------------------------------------------------------------

struct FastFields {
  std::optional<int64_t> id, v, timeout_ms, world, k;
  std::optional<bool> local_search;
  std::optional<double> threshold, max_error;
  std::string_view op, method, accuracy;
  std::string_view seeds;  // the bytes between '[' and ']'
  bool has_op = false, has_method = false, has_accuracy = false;
  bool has_seeds = false;
};

class FastParser {
 public:
  explicit FastParser(std::string_view s) : s_(s) {}

  // True when the whole line is in the fast subset and *f holds every
  // field; false means "use the canonical parser".
  bool Scan(FastFields* f) {
    SkipWs();
    if (!Consume('{')) return false;
    SkipWs();
    if (!Consume('}')) {
      while (true) {
        std::string_view key;
        if (!ScanString(&key)) return false;
        SkipWs();
        if (!Consume(':')) return false;
        SkipWs();
        if (!ScanMember(f, key)) return false;
        SkipWs();
        if (Consume('}')) break;
        if (!Consume(',')) return false;
        SkipWs();
      }
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ScanMember(FastFields* f, std::string_view key) {
    if (key == "id") return ScanInt(&f->id);
    if (key == "v") return ScanInt(&f->v);
    if (key == "timeout_ms") return ScanInt(&f->timeout_ms);
    if (key == "world") return ScanInt(&f->world);
    if (key == "k") return ScanInt(&f->k);
    if (key == "local_search") return ScanBool(&f->local_search);
    if (key == "threshold") return ScanDouble(&f->threshold);
    if (key == "max_error") return ScanDouble(&f->max_error);
    if (key == "op") return ScanStringField(&f->op, &f->has_op);
    if (key == "method") return ScanStringField(&f->method, &f->has_method);
    if (key == "accuracy") {
      return ScanStringField(&f->accuracy, &f->has_accuracy);
    }
    if (key == "seeds") return ScanSeeds(f);
    // Unknown key (including "ops": update batches are rare and allocate
    // anyway): let the canonical parser decide what it means.
    return false;
  }

  // A duplicate key bails out in every Scan* helper: the canonical parser
  // honors the FIRST occurrence, and replicating that here isn't worth it.

  bool ScanInt(std::optional<int64_t>* dst) {
    if (dst->has_value()) return false;
    int64_t v = 0;
    const auto res =
        std::from_chars(s_.data() + pos_, s_.data() + s_.size(), v);
    if (res.ec != std::errc()) return false;
    const size_t next = static_cast<size_t>(res.ptr - s_.data());
    // A fraction or exponent makes this a double; the canonical parser
    // decides whether it is integral.
    if (next < s_.size() &&
        (s_[next] == '.' || s_[next] == 'e' || s_[next] == 'E')) {
      return false;
    }
    pos_ = next;
    *dst = v;
    return true;
  }

  bool ScanDouble(std::optional<double>* dst) {
    if (dst->has_value()) return false;
    if (pos_ >= s_.size()) return false;
    // from_chars accepts "inf"/"nan"; the canonical number grammar does
    // not, so demand a digit or sign up front.
    const char c = s_[pos_];
    if (c != '-' && (c < '0' || c > '9')) return false;
    double v = 0.0;
    const auto res =
        std::from_chars(s_.data() + pos_, s_.data() + s_.size(), v);
    if (res.ec != std::errc()) return false;
    pos_ = static_cast<size_t>(res.ptr - s_.data());
    *dst = v;
    return true;
  }

  bool ScanBool(std::optional<bool>* dst) {
    if (dst->has_value()) return false;
    if (s_.substr(pos_, 4) == "true") {
      pos_ += 4;
      *dst = true;
      return true;
    }
    if (s_.substr(pos_, 5) == "false") {
      pos_ += 5;
      *dst = false;
      return true;
    }
    return false;
  }

  bool ScanString(std::string_view* out) {
    if (!Consume('"')) return false;
    const size_t begin = pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') return false;  // escapes: canonical parser
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;  // unterminated
    *out = s_.substr(begin, pos_ - begin);
    ++pos_;  // closing quote
    return true;
  }

  bool ScanStringField(std::string_view* out, bool* present) {
    if (*present) return false;
    if (!ScanString(out)) return false;
    *present = true;
    return true;
  }

  bool ScanSeeds(FastFields* f) {
    if (f->has_seeds) return false;
    if (!Consume('[')) return false;
    const size_t begin = pos_;
    while (pos_ < s_.size() && s_[pos_] != ']') {
      const char c = s_[pos_];
      const bool numeric = (c >= '0' && c <= '9') || c == '-' || c == '+' ||
                           c == '.' || c == 'e' || c == 'E';
      if (!numeric && c != ',' && c != ' ' && c != '\t') return false;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;  // unterminated array
    f->seeds = s_.substr(begin, pos_ - begin);
    f->has_seeds = true;
    ++pos_;  // ']'
    return true;
  }

  std::string_view s_;
  size_t pos_ = 0;
};

// Extracts the seeds slice into a reused vector. Bails (false) on anything
// the canonical RequireSeeds would reject, so its error message is produced
// by the fallback.
bool ParseSeedsInto(std::string_view slice, std::vector<NodeId>* seeds) {
  seeds->clear();
  size_t pos = 0;
  const auto skip_ws = [&] {
    while (pos < slice.size() && (slice[pos] == ' ' || slice[pos] == '\t')) {
      ++pos;
    }
  };
  skip_ws();
  if (pos == slice.size()) return true;  // empty array
  while (true) {
    uint64_t v = 0;
    const auto res =
        std::from_chars(slice.data() + pos, slice.data() + slice.size(), v);
    if (res.ec != std::errc()) return false;
    const size_t next = static_cast<size_t>(res.ptr - slice.data());
    if (next < slice.size() &&
        (slice[next] == '.' || slice[next] == 'e' || slice[next] == 'E')) {
      return false;  // fractional node id: canonical error path
    }
    if (v > UINT32_MAX) return false;
    seeds->push_back(static_cast<NodeId>(v));
    pos = next;
    skip_ws();
    if (pos == slice.size()) return true;
    if (slice[pos] != ',') return false;
    ++pos;
    skip_ws();
    if (pos == slice.size()) return false;  // trailing comma
  }
}

// Reuse-or-emplace: keeps the payload's current alternative (and its heap
// capacity) when the type already matches.
template <typename T>
T* PayloadSlot(Request* request) {
  if (T* existing = std::get_if<T>(&request->payload)) return existing;
  return &request->payload.emplace<T>();
}

// Maps scanned fields onto *out, replicating the canonical parser's
// validation. Any failed check bails to the fallback so the error message
// has a single source of truth. On success *out is exactly what
// ParseRequestLine would have produced.
bool BuildFastRequest(const FastFields& f, ProtocolRequest* out) {
  const int64_t version = f.v.value_or(1);
  if (version != 1 && version != 2) return false;
  const int64_t timeout_ms = f.timeout_ms.value_or(0);
  if (timeout_ms < 0) return false;
  if (version < 2 && (f.has_accuracy || f.max_error.has_value())) {
    return false;  // v2 fields on a v1 line: canonical error
  }
  Accuracy accuracy = Accuracy::kExact;
  if (f.has_accuracy) {
    if (f.accuracy == "exact") {
      accuracy = Accuracy::kExact;
    } else if (f.accuracy == "sketch") {
      accuracy = Accuracy::kSketch;
    } else if (f.accuracy == "auto") {
      accuracy = Accuracy::kAuto;
    } else {
      return false;
    }
  }
  const double max_error = f.max_error.value_or(0.0);
  if (max_error < 0.0) return false;
  if (!f.has_op) return false;

  if (f.op == "typical") {
    if (!f.has_seeds) return false;
    auto* req = PayloadSlot<TypicalCascadeRequest>(&out->request);
    if (!ParseSeedsInto(f.seeds, &req->seeds)) return false;
    req->local_search = f.local_search.value_or(false);
  } else if (f.op == "cascade") {
    if (!f.has_seeds || !f.world.has_value()) return false;
    if (*f.world < 0 || *f.world > static_cast<int64_t>(UINT32_MAX)) {
      return false;
    }
    auto* req = PayloadSlot<CascadeRequest>(&out->request);
    if (!ParseSeedsInto(f.seeds, &req->seeds)) return false;
    req->world = static_cast<uint32_t>(*f.world);
  } else if (f.op == "spread") {
    if (!f.has_seeds) return false;
    auto* req = PayloadSlot<SpreadRequest>(&out->request);
    if (!ParseSeedsInto(f.seeds, &req->seeds)) return false;
  } else if (f.op == "seed_select") {
    if (!f.k.has_value()) return false;
    if (*f.k <= 0 || *f.k > static_cast<int64_t>(UINT32_MAX)) return false;
    auto* req = PayloadSlot<SeedSelectRequest>(&out->request);
    req->k = static_cast<uint32_t>(*f.k);
    if (f.has_method) {
      req->method.assign(f.method);
    } else {
      req->method.assign("tc");
    }
  } else if (f.op == "reliability") {
    if (!f.has_seeds) return false;
    auto* req = PayloadSlot<ReliabilityRequest>(&out->request);
    if (!ParseSeedsInto(f.seeds, &req->seeds)) return false;
    req->threshold = f.threshold.value_or(0.5);
  } else {
    // "update" and unknown ops: canonical path (updates allocate anyway).
    return false;
  }

  out->id = f.id.value_or(-1);
  out->version = static_cast<int>(version);
  out->request.timeout_ms = static_cast<uint64_t>(timeout_ms);
  out->request.accuracy = accuracy;
  out->request.max_error = max_error;
  return true;
}

// Quote-aware scan for a top-level  "key" ws* ':' ws* <integer>  pattern.
// Tracks string boundaries (honoring backslash escapes) so a key embedded
// inside a string VALUE is never matched, and a quoted token only counts as
// a key when a ':' follows it.
bool SalvageIntField(std::string_view line, std::string_view key,
                     int64_t* out) {
  const size_t n = line.size();
  size_t i = 0;
  const auto is_ws = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (i < n) {
    if (line[i] != '"') {
      ++i;
      continue;
    }
    const size_t token_begin = ++i;
    bool has_escape = false;
    while (i < n && line[i] != '"') {
      if (line[i] == '\\') {
        has_escape = true;
        ++i;
        if (i < n) ++i;  // skip the escaped character (handles \")
      } else {
        ++i;
      }
    }
    if (i >= n) return false;  // unterminated string: nothing after it
    const std::string_view token = line.substr(token_begin, i - token_begin);
    ++i;  // closing quote
    if (has_escape || token != key) continue;
    size_t j = i;
    while (j < n && is_ws(line[j])) ++j;
    if (j >= n || line[j] != ':') continue;  // a string value, not a key
    ++j;
    while (j < n && is_ws(line[j])) ++j;
    bool negative = false;
    if (j < n && line[j] == '-') {
      negative = true;
      ++j;
    }
    if (j >= n || line[j] < '0' || line[j] > '9') continue;
    int64_t value = 0;
    while (j < n && line[j] >= '0' && line[j] <= '9') {
      value = value * 10 + (line[j] - '0');
      ++j;
    }
    *out = negative ? -value : value;
    return true;
  }
  return false;
}

}  // namespace

const char* StatusCodeToWireString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kIOError: return "io_error";
    case StatusCode::kUnimplemented: return "unimplemented";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
  }
  return "unknown";
}

const char* StatusCodeToErrorCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kIOError: return "IO_ERROR";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

Result<ProtocolRequest> ParseRequestLine(std::string_view line) {
  JsonReader reader(line);
  SOI_ASSIGN_OR_RETURN(const JsonValue root, reader.Parse());
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("request line must be a JSON object");
  }

  ProtocolRequest out;
  SOI_ASSIGN_OR_RETURN(out.id, RequireInt(root, "id", -1, /*required=*/false));
  SOI_ASSIGN_OR_RETURN(const int64_t version,
                       RequireInt(root, "v", 1, /*required=*/false));
  if (version != 1 && version != 2) {
    return Status::InvalidArgument(
        "unsupported protocol version \"v\":" + std::to_string(version) +
        " (this server speaks v1 and v2)");
  }
  out.version = static_cast<int>(version);
  SOI_ASSIGN_OR_RETURN(
      const int64_t timeout_ms,
      RequireInt(root, "timeout_ms", 0, /*required=*/false));
  if (timeout_ms < 0) {
    return Status::InvalidArgument("\"timeout_ms\" must be >= 0");
  }
  out.request.timeout_ms = static_cast<uint64_t>(timeout_ms);

  // Accuracy envelope fields are v2-only and uniform across ops. On a v1
  // line they are an error naming the fix — silently ignoring them would
  // serve exact answers to a client that asked for routing.
  const JsonValue* accuracy = root.Find("accuracy");
  const JsonValue* max_error = root.Find("max_error");
  if (out.version < 2 && (accuracy != nullptr || max_error != nullptr)) {
    return Status::InvalidArgument(
        "\"accuracy\"/\"max_error\" require the v2 envelope; add \"v\":2 to "
        "the request");
  }
  if (accuracy != nullptr) {
    if (accuracy->kind != JsonValue::Kind::kString) {
      return Status::InvalidArgument("\"accuracy\" must be a string");
    }
    if (accuracy->string == "exact") {
      out.request.accuracy = Accuracy::kExact;
    } else if (accuracy->string == "sketch") {
      out.request.accuracy = Accuracy::kSketch;
    } else if (accuracy->string == "auto") {
      out.request.accuracy = Accuracy::kAuto;
    } else {
      return Status::InvalidArgument("unknown accuracy \"" +
                                     accuracy->string +
                                     "\" (expected exact|sketch|auto)");
    }
  }
  if (max_error != nullptr) {
    if (max_error->kind != JsonValue::Kind::kNumber ||
        max_error->number < 0.0) {
      return Status::InvalidArgument("\"max_error\" must be a number >= 0");
    }
    out.request.max_error = max_error->number;
  }

  const JsonValue* op = root.Find("op");
  if (op == nullptr || op->kind != JsonValue::Kind::kString) {
    return Status::InvalidArgument("missing required field \"op\" (string)");
  }

  if (op->string == "typical") {
    TypicalCascadeRequest req;
    SOI_ASSIGN_OR_RETURN(req.seeds, RequireSeeds(root));
    const JsonValue* ls = root.Find("local_search");
    if (ls != nullptr) {
      if (ls->kind != JsonValue::Kind::kBool) {
        return Status::InvalidArgument("\"local_search\" must be a boolean");
      }
      req.local_search = ls->boolean;
    }
    out.request.payload = std::move(req);
  } else if (op->string == "cascade") {
    CascadeRequest req;
    SOI_ASSIGN_OR_RETURN(req.seeds, RequireSeeds(root));
    SOI_ASSIGN_OR_RETURN(const int64_t world,
                         RequireInt(root, "world", 0, /*required=*/true));
    if (world < 0 || world > static_cast<int64_t>(UINT32_MAX)) {
      return Status::InvalidArgument("\"world\" must be a 32-bit world index");
    }
    req.world = static_cast<uint32_t>(world);
    out.request.payload = std::move(req);
  } else if (op->string == "spread") {
    SpreadRequest req;
    SOI_ASSIGN_OR_RETURN(req.seeds, RequireSeeds(root));
    out.request.payload = std::move(req);
  } else if (op->string == "seed_select") {
    SeedSelectRequest req;
    SOI_ASSIGN_OR_RETURN(const int64_t k,
                         RequireInt(root, "k", 0, /*required=*/true));
    if (k <= 0 || k > static_cast<int64_t>(UINT32_MAX)) {
      return Status::InvalidArgument("\"k\" must be a positive integer");
    }
    req.k = static_cast<uint32_t>(k);
    const JsonValue* method = root.Find("method");
    if (method != nullptr) {
      if (method->kind != JsonValue::Kind::kString) {
        return Status::InvalidArgument("\"method\" must be a string");
      }
      req.method = method->string;
    }
    out.request.payload = std::move(req);
  } else if (op->string == "reliability") {
    ReliabilityRequest req;
    SOI_ASSIGN_OR_RETURN(req.seeds, RequireSeeds(root));
    const JsonValue* threshold = root.Find("threshold");
    if (threshold != nullptr) {
      if (threshold->kind != JsonValue::Kind::kNumber) {
        return Status::InvalidArgument("\"threshold\" must be a number");
      }
      req.threshold = threshold->number;
    }
    out.request.payload = std::move(req);
  } else if (op->string == "update") {
    UpdateRequest req;
    const JsonValue* ops = root.Find("ops");
    if (ops == nullptr || ops->kind != JsonValue::Kind::kArray) {
      return Status::InvalidArgument(
          "missing required field \"ops\" (array of update objects)");
    }
    req.ops.reserve(ops->array.size());
    for (const JsonValue& e : ops->array) {
      SOI_ASSIGN_OR_RETURN(GraphUpdate update, ParseUpdateOp(e));
      req.ops.push_back(update);
    }
    out.request.payload = std::move(req);
  } else {
    return Status::InvalidArgument(
        "unknown op \"" + op->string +
        "\" (expected typical|cascade|spread|seed_select|reliability|"
        "update)");
  }
  return out;
}

Status ParseRequestLineInto(std::string_view line, ProtocolRequest* out) {
  FastFields fields;
  if (FastParser(line).Scan(&fields) && BuildFastRequest(fields, out)) {
    return Status::OK();
  }
  // Outside the fast subset (or validation failed): the canonical parser is
  // the single source of truth for both acceptance and error text.
  Result<ProtocolRequest> parsed = ParseRequestLine(line);
  if (!parsed.ok()) return parsed.status();
  *out = std::move(*parsed);
  return Status::OK();
}

int64_t SalvageId(std::string_view line) {
  int64_t id = -1;
  return SalvageIntField(line, "id", &id) ? id : -1;
}

int SalvageVersion(std::string_view line) {
  int64_t v = 1;
  return SalvageIntField(line, "v", &v) && v == 2 ? 2 : 1;
}

void AppendResponseLine(std::string* out, int64_t id, int version,
                        const Result<Response>& result) {
  out->append("{\"id\":");
  AppendInt(out, id);
  if (version < 2) {
    out->append(",\"status\":\"");
    out->append(StatusCodeToWireString(result.ok() ? StatusCode::kOk
                                                   : result.status().code()));
    out->append("\"");
    if (result.ok()) {
      std::visit(ResponseBodyWriter{out}, result->payload);
    } else {
      out->append(",\"error\":\"");
      AppendEscaped(out, result.status().message());
      out->append("\"");
    }
  } else if (result.ok()) {
    out->append(",\"status\":\"ok\"");
    std::visit(ResponseBodyWriter{out}, result->payload);
    out->append(",\"tier\":\"");
    out->append(result->meta.tier);
    out->append("\",\"est_error\":");
    AppendDouble(out, result->meta.est_error);
    out->append(",\"elapsed_us\":");
    AppendInt(out, result->meta.elapsed_us);
  } else {
    out->append(",\"status\":\"error\",\"code\":\"");
    out->append(StatusCodeToErrorCode(result.status().code()));
    out->append("\",\"message\":\"");
    AppendEscaped(out, result.status().message());
    out->append("\"");
  }
  out->append("}\n");
}

std::string FormatResponseLine(int64_t id, const Result<Response>& result) {
  std::string out;
  AppendResponseLine(&out, id, /*version=*/1, result);
  return out;
}

std::string FormatResponseLine(int64_t id, int version,
                               const Result<Response>& result) {
  std::string out;
  AppendResponseLine(&out, id, version, result);
  return out;
}

}  // namespace soi::service
