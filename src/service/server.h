#ifndef SOI_SERVICE_SERVER_H_
#define SOI_SERVICE_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "service/engine.h"
#include "service/hot_swap.h"
#include "util/status.h"

namespace soi::service {

/// Serve-loop configuration (the engine's own admission control still
/// applies underneath).
struct ServeOptions {
  /// Flush a pending batch once it reaches this many requests. 0 = use the
  /// engine's max_batch. Values above the engine's max_batch are clamped.
  uint32_t batch_max = 0;
  /// ServeTcp only: stop accepting after this many connections (0 = serve
  /// forever). Lets tests and smoke scripts run a bounded server.
  uint32_t max_connections = 0;
  /// Cross-connection batching window in microseconds. 0 = flush as soon as
  /// the epoll ready set drains (lowest latency, still coalesces whatever
  /// arrived together); > 0 = keep accumulating requests across connections
  /// for up to this long after the first pending request before executing
  /// one batch — trades up to that much latency for larger deterministic
  /// batches under concurrent load.
  uint32_t batch_window_us = 0;
  /// Longest accepted request line in bytes (0 = unlimited). A longer line
  /// is answered with an in-order invalid_argument error and the parser
  /// resynchronizes at the next newline, so one hostile client cannot grow
  /// a server buffer without bound.
  size_t max_line_bytes = 1 << 20;
  /// Per-connection write backpressure threshold in bytes (0 = unlimited).
  /// Once a connection's un-sent output exceeds this, the server stops
  /// reading from it until the client drains its socket.
  size_t max_output_bytes = 4u << 20;
  /// ServeTcp only: invoked once the socket is listening, with the bound
  /// port — the race-free way for a test or supervisor to learn when (and
  /// where) to connect.
  std::function<void(uint16_t)> on_listening;
  /// Invoked at serve-loop boundaries: on every event-loop wakeup (including
  /// signal interruptions, so a SIGHUP handler's flag is seen promptly).
  /// This is where a CLI reload handler checks its flag and
  /// EngineHandle::Swap()s in a fresh snapshot — never from signal context.
  /// Must not block for long; requests queue while it runs.
  std::function<void()> poll;
};

/// Runs the line-JSON protocol over a pair of file descriptors until EOF on
/// `in_fd` — the single-connection degenerate case of the epoll event loop
/// (see event_loop.h). Requests are batched greedily: lines already buffered
/// are grouped into one deterministic RunBatch call (up to batch_max).
/// Responses are written in request order. Malformed lines produce an
/// in-order error response and the stream keeps serving. Descriptors that
/// cannot be epoll-registered (regular files) are served by an equivalent
/// blocking driver. Returns only on EOF (OK) or an unrecoverable read/write
/// error (IOError).
Status ServeStream(Engine* engine, int in_fd, int out_fd,
                   const ServeOptions& options = {});

/// Hot-swappable variant: each batch Acquire()s the handle's current engine
/// and runs against it start-to-finish, so EngineHandle::Swap() never drops
/// or splits a request — in-flight batches finish on the old engine, the
/// next batch picks up the new one. batch_max is clamped against the engine
/// installed at call time.
Status ServeStream(const EngineHandle* handle, int in_fd, int out_fd,
                   const ServeOptions& options = {});

/// Listens on 127.0.0.1:`port` (0 = ephemeral; the chosen port is stored in
/// `*bound_port` if non-null) and serves all connections concurrently on a
/// single-threaded epoll event loop: N clients are multiplexed, their
/// requests coalesce into cross-connection batches (see
/// ServeOptions::batch_window_us), and slow readers get per-connection
/// write backpressure instead of blocking everyone else. Returns after
/// `max_connections` connections have been accepted and drained when that
/// is nonzero.
Status ServeTcp(Engine* engine, uint16_t port, const ServeOptions& options = {},
                uint16_t* bound_port = nullptr);

/// Hot-swappable variant (see the EngineHandle ServeStream overload).
Status ServeTcp(const EngineHandle* handle, uint16_t port,
                const ServeOptions& options = {},
                uint16_t* bound_port = nullptr);

/// The historical one-connection-at-a-time accept loop: each client is
/// served to completion before the next is accepted, so a slow client
/// head-of-line blocks everyone behind it. Kept as the comparison baseline
/// for bench_serve; not used by the CLI.
Status ServeTcpSequential(Engine* engine, uint16_t port,
                          const ServeOptions& options = {},
                          uint16_t* bound_port = nullptr);

}  // namespace soi::service

#endif  // SOI_SERVICE_SERVER_H_
