#ifndef SOI_SERVICE_SERVER_H_
#define SOI_SERVICE_SERVER_H_

#include <cstdint>
#include <functional>

#include "service/engine.h"
#include "service/hot_swap.h"
#include "util/status.h"

namespace soi::service {

/// Serve-loop configuration (the engine's own admission control still
/// applies underneath).
struct ServeOptions {
  /// Flush a pending batch once it reaches this many requests. 0 = use the
  /// engine's max_batch. Values above the engine's max_batch are clamped.
  uint32_t batch_max = 0;
  /// ServeTcp only: stop accepting after this many connections (0 = serve
  /// forever). Lets tests and smoke scripts run a bounded server.
  uint32_t max_connections = 0;
  /// ServeTcp only: invoked once the socket is listening, with the bound
  /// port — the race-free way for a test or supervisor to learn when (and
  /// where) to connect.
  std::function<void(uint16_t)> on_listening;
  /// Invoked at serve-loop boundaries: after every read wakeup (including
  /// signal interruptions, so a SIGHUP handler's flag is seen promptly) and
  /// between connections. This is where a CLI reload handler checks its
  /// flag and EngineHandle::Swap()s in a fresh snapshot — never from signal
  /// context. Must not block for long; requests queue while it runs.
  std::function<void()> poll;
};

/// Runs the line-JSON protocol over a pair of file descriptors until EOF on
/// `in_fd`. Requests are batched greedily: lines already buffered are
/// grouped into one RunBatch call (up to batch_max), so a client that
/// writes N requests and then waits gets them executed as one deterministic
/// batch. Responses are written in request order. Malformed lines produce
/// an in-order error response and the stream keeps serving. Returns only on
/// EOF (OK) or an unrecoverable read/write error (IOError).
Status ServeStream(Engine* engine, int in_fd, int out_fd,
                   const ServeOptions& options = {});

/// Hot-swappable variant: each batch Acquire()s the handle's current engine
/// and runs against it start-to-finish, so EngineHandle::Swap() never drops
/// or splits a request — in-flight batches finish on the old engine, the
/// next batch picks up the new one. batch_max is clamped against the engine
/// installed at call time.
Status ServeStream(const EngineHandle* handle, int in_fd, int out_fd,
                   const ServeOptions& options = {});

/// Listens on 127.0.0.1:`port` (0 = ephemeral; the chosen port is stored in
/// `*bound_port` if non-null) and serves connections sequentially with
/// ServeStream. Returns after `max_connections` connections when that is
/// nonzero.
Status ServeTcp(Engine* engine, uint16_t port, const ServeOptions& options = {},
                uint16_t* bound_port = nullptr);

/// Hot-swappable variant (see the EngineHandle ServeStream overload).
Status ServeTcp(const EngineHandle* handle, uint16_t port,
                const ServeOptions& options = {},
                uint16_t* bound_port = nullptr);

}  // namespace soi::service

#endif  // SOI_SERVICE_SERVER_H_
