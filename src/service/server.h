#ifndef SOI_SERVICE_SERVER_H_
#define SOI_SERVICE_SERVER_H_

#include <cstdint>
#include <functional>

#include "service/engine.h"
#include "util/status.h"

namespace soi::service {

/// Serve-loop configuration (the engine's own admission control still
/// applies underneath).
struct ServeOptions {
  /// Flush a pending batch once it reaches this many requests. 0 = use the
  /// engine's max_batch. Values above the engine's max_batch are clamped.
  uint32_t batch_max = 0;
  /// ServeTcp only: stop accepting after this many connections (0 = serve
  /// forever). Lets tests and smoke scripts run a bounded server.
  uint32_t max_connections = 0;
  /// ServeTcp only: invoked once the socket is listening, with the bound
  /// port — the race-free way for a test or supervisor to learn when (and
  /// where) to connect.
  std::function<void(uint16_t)> on_listening;
};

/// Runs the line-JSON protocol over a pair of file descriptors until EOF on
/// `in_fd`. Requests are batched greedily: lines already buffered are
/// grouped into one RunBatch call (up to batch_max), so a client that
/// writes N requests and then waits gets them executed as one deterministic
/// batch. Responses are written in request order. Malformed lines produce
/// an in-order error response and the stream keeps serving. Returns only on
/// EOF (OK) or an unrecoverable read/write error (IOError).
Status ServeStream(Engine* engine, int in_fd, int out_fd,
                   const ServeOptions& options = {});

/// Listens on 127.0.0.1:`port` (0 = ephemeral; the chosen port is stored in
/// `*bound_port` if non-null) and serves connections sequentially with
/// ServeStream. Returns after `max_connections` connections when that is
/// nonzero.
Status ServeTcp(Engine* engine, uint16_t port, const ServeOptions& options = {},
                uint16_t* bound_port = nullptr);

}  // namespace soi::service

#endif  // SOI_SERVICE_SERVER_H_
