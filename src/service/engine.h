#ifndef SOI_SERVICE_ENGINE_H_
#define SOI_SERVICE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "graph/prob_graph.h"
#include "index/cascade_index.h"
#include "infmax/sketch_oracle.h"
#include "util/flat_sets.h"
#include "util/status.h"

namespace soi::service {

/// The query service facade: one loaded graph + cascade index behind a
/// thread-safe request/response API. Every query the CLI answers by
/// rebuilding an index from scratch is answered here against the one index
/// the engine owns, so per-query latency is micro- to milliseconds instead
/// of a full rebuild.
///
/// Error model: invalid input NEVER aborts the process. Every request
/// returns Result<Response>; malformed requests come back as
/// InvalidArgument with an actionable message, expired deadlines as
/// DeadlineExceeded, admission-control rejections as ResourceExhausted.
/// SOI_CHECK remains reserved for internal invariants.
///
/// Determinism: batch execution follows the runtime contract
/// (src/runtime/parallel_for.h) — each request is executed independently,
/// results land in per-request slots, and no handler draws fresh
/// randomness — so a batch's responses are byte-identical at every thread
/// count. The single best-effort exception is per-request deadlines, which
/// compare wall clocks; batches that use no deadlines are fully
/// deterministic.

/// Per-request accuracy knob. kExact always answers from the exact tier
/// (closure cache); kSketch demands the bottom-k sketch tier (fails with
/// FailedPrecondition when the engine has no sketches or the op has no
/// sketch path); kAuto answers exact while headroom exists and degrades to
/// the sketch tier under pressure — admission depth at/above the configured
/// threshold, or deadline slack mostly consumed — instead of shedding.
/// Only spread and seed_select have a sketch path; kAuto on other ops is
/// accepted and served exact.
enum class Accuracy : uint8_t {
  kExact = 0,
  kSketch = 1,
  kAuto = 2,
};

/// Sphere of influence (Algorithm 2) of a seed set.
struct TypicalCascadeRequest {
  std::vector<NodeId> seeds;
  /// Enable the 1-swap local-search refinement of the Jaccard median.
  bool local_search = false;
};

/// Exact cascade of a seed set in one sampled world.
struct CascadeRequest {
  std::vector<NodeId> seeds;
  uint32_t world = 0;
};

/// Expected spread (mean reachable-set size over the index's worlds).
struct SpreadRequest {
  std::vector<NodeId> seeds;
};

/// Seed selection: "tc" = InfMax_TC (Algorithm 3, coverage over typical
/// cascades, lazily computed once per engine), "std" = InfMax_std (greedy
/// over the index's spread oracle, built lazily once per engine). Both
/// methods reuse cached state and draw no fresh randomness, so repeated
/// requests return identical answers.
struct SeedSelectRequest {
  uint32_t k = 10;
  std::string method = "tc";
};

/// Reliability search: all nodes reachable from the seeds with probability
/// >= threshold on the index's worlds.
struct ReliabilityRequest {
  std::vector<NodeId> seeds;
  double threshold = 0.5;
};

/// Graph mutation batch (dynamic engines only; see src/dynamic/). The ops
/// apply atomically and in order: on any validation error nothing changes
/// and the request fails whole. A static engine (Create/FromParts) answers
/// with FailedPrecondition.
struct UpdateRequest {
  std::vector<GraphUpdate> ops;
};

/// A typed request plus its per-request deadline. The deadline is measured
/// from batch admission; a request whose deadline has expired before it is
/// picked up returns DeadlineExceeded. Partial-result policy: a request
/// that has already STARTED executing always runs to completion — deadlines
/// shed queued work, they never truncate an answer.
struct Request {
  std::variant<TypicalCascadeRequest, CascadeRequest, SpreadRequest,
               SeedSelectRequest, ReliabilityRequest, UpdateRequest>
      payload;
  /// Per-request timeout in milliseconds; 0 = EngineOptions default.
  uint64_t timeout_ms = 0;
  /// Which tier may answer (defaults to exact: v1 clients see byte-identical
  /// behavior).
  Accuracy accuracy = Accuracy::kExact;
  /// With kAuto: largest acceptable relative error. 0 = any. When the sketch
  /// tier's 1/sqrt(k-2) bound exceeds this, auto stays exact even under
  /// pressure (correctness beats degradation).
  double max_error = 0.0;
};

struct TypicalCascadeResponse {
  std::vector<NodeId> cascade;
  double in_sample_cost = 0.0;
  double mean_sample_size = 0.0;
};

struct CascadeResponse {
  std::vector<NodeId> cascade;
};

struct SpreadResponse {
  double spread = 0.0;
};

struct SeedSelectResponse {
  std::vector<NodeId> seeds;  // in selection order
  /// Objective after the last committed seed (expected spread for "std",
  /// covered-node count for "tc").
  double objective = 0.0;
};

struct ReliabilityResponse {
  std::vector<NodeId> nodes;
};

struct UpdateResponse {
  /// Ops applied (== batch size; failures apply nothing).
  uint32_t applied = 0;
  /// Worlds re-derived by this batch (see UpdateStats).
  uint32_t affected_worlds = 0;
  /// Typical-cascade entries recomputed (0 when the table isn't built yet).
  uint32_t affected_nodes = 0;
  /// Cumulative applied updates since the engine was built — the signal the
  /// drift-rebuild policy thresholds on.
  uint64_t drift = 0;
};

using ResponsePayload =
    std::variant<TypicalCascadeResponse, CascadeResponse, SpreadResponse,
                 SeedSelectResponse, ReliabilityResponse, UpdateResponse>;

/// Answer provenance attached to every response: which tier produced it,
/// its a-priori relative error bound (0 = exact on the sampled worlds), and
/// the handler's wall time. Protocol v2 serializes all three; v1 responses
/// ignore them (v1 only ever sees the exact tier).
struct ResponseMeta {
  const char* tier = "exact";
  double est_error = 0.0;
  uint64_t elapsed_us = 0;
};

struct Response {
  Response() = default;
  Response(ResponsePayload p) : payload(std::move(p)) {}  // NOLINT: implicit
  ResponsePayload payload;
  ResponseMeta meta;
};

/// Stable lowercase name of a request's type ("typical", "cascade",
/// "spread", "seed_select", "reliability", "update") — used for metrics and
/// the wire protocol.
const char* RequestTypeName(const Request& request);

/// Engine configuration: index construction plus admission control.
struct EngineOptions {
  /// Worlds / model / closure budget for the index the engine builds.
  CascadeIndexOptions index;
  /// Seed for world sampling (same seed + graph => same index => same
  /// answers).
  uint64_t seed = 1;
  /// When nonzero, sets the process-global thread budget at Create time
  /// (equivalent to SetGlobalThreads). 0 leaves the current budget alone.
  uint32_t threads = 0;

  // -- Admission control --------------------------------------------------
  /// Largest batch RunBatch accepts; bigger batches are rejected whole with
  /// ResourceExhausted (no partial execution).
  uint32_t max_batch = 1024;
  /// Maximum concurrently admitted RunBatch/Run calls; excess callers are
  /// rejected with ResourceExhausted instead of queueing unboundedly.
  uint32_t max_in_flight = 4;
  /// Default per-request timeout in milliseconds (0 = none). Overridable
  /// per request via Request::timeout_ms.
  uint64_t default_timeout_ms = 0;
  /// Injectable monotonic clock (nanoseconds) for deadline checks; nullptr
  /// uses the real clock. Tests inject a fake clock to exercise deadlines
  /// deterministically.
  uint64_t (*clock_ns)() = nullptr;

  // -- Sketch tier / accuracy routing -------------------------------------
  /// Bottom-k sketch size for the approximate serving tier; 0 disables the
  /// tier (explicit accuracy:sketch requests fail with FailedPrecondition
  /// and auto never degrades). Sketches are built lazily on first use
  /// (deterministically from `seed`), or adopted from EngineParts::sketches
  /// on the snapshot path. Relative error ~ 1/sqrt(k-2).
  uint32_t sketch_k = 0;
  /// In-flight batch depth at which auto requests degrade to the sketch
  /// tier; 0 = max_in_flight (degrade only at admission saturation). Lower
  /// values trade accuracy for latency earlier.
  uint32_t sketch_pressure_in_flight = 0;

  // -- Dynamic updates (CreateDynamic engines only) -----------------------
  /// When nonzero, the serving layer (soi_cli serve --dynamic, or any
  /// EngineHandle owner) is expected to rebuild the engine from its
  /// materialized graph and hot-swap it once drift() crosses this many
  /// applied updates. The engine itself only counts drift — orchestration
  /// lives with whoever owns the EngineHandle, because only the handle can
  /// perform the atomic swap. 0 disables the policy.
  uint64_t drift_rebuild_threshold = 0;
};

/// Pre-assembled serving state for Engine::FromParts — the restart path
/// that skips every build step. The graph and index may be borrowed views
/// into an external mapping; `storage` is the opaque lifetime anchor that
/// keeps that mapping alive for as long as the engine exists (the service
/// layer never depends on the snapshot layer — it just holds the anchor).
struct EngineParts {
  ProbGraph graph;
  CascadeIndex index;
  /// Pre-computed typical-cascade table (one set per node). When present it
  /// seeds the engine's "tc" seed-selection cache, so even the first
  /// seed_select skips the full typical sweep. Must equal what
  /// TypicalCascadeComputer::ComputeAllFlat() would produce for `index`
  /// (both are deterministic, so a table captured at snapshot-create time
  /// qualifies) — otherwise seed_select answers would diverge from an
  /// owned engine's.
  std::optional<FlatSets> typical;
  /// Pre-built sketch tier (snapshot kinds 27-29, via MakeSketchParts).
  /// When present the engine adopts it instead of building sketches lazily,
  /// and enables routing with the parts' k. The spans may borrow from
  /// `storage`.
  std::optional<SketchParts> sketches;
  /// Opaque anchor for whatever backs borrowed views (e.g. a
  /// snapshot::Snapshot). May be null when everything is owned.
  std::shared_ptr<const void> storage;
};

/// A consistent capture of a dynamic engine's state, taken under the update
/// lock: the materialized graph plus the journal position it corresponds
/// to. The drift-rebuild flow builds a fresh engine from `graph` (same
/// options + seed => byte-identical index, see src/dynamic/), replays
/// JournalSince(journal_seq) onto it, and swaps it in via EngineHandle —
/// a semantic no-op that compacts arenas and revives dropped caches.
struct DynamicState {
  ProbGraph graph;
  uint64_t journal_seq = 0;
};

/// Thread-safe, movable facade owning the graph, the index, and the lazily
/// built seed-selection caches. Create once, answer many.
///
/// Dynamic mode (CreateDynamic): the engine additionally owns a
/// DynamicIndex and accepts UpdateRequest batches. A batch containing any
/// update runs sequentially under an exclusive state lock (updates mutate
/// the index; sequential execution also keeps update batches deterministic
/// at every thread count); pure-query batches share the state lock and run
/// on the parallel path as usual.
class Engine {
 public:
  /// Builds the index from `graph` (which the engine takes ownership of)
  /// and validates the options.
  static Result<Engine> Create(ProbGraph graph,
                               const EngineOptions& options = {});

  /// Builds an incrementally maintainable engine (keyed world sampling,
  /// see src/dynamic/): accepts UpdateRequest batches, keeps a journal for
  /// drift rebuilds, and stays byte-identical to a fresh CreateDynamic on
  /// the updated graph after every batch. NOTE: keyed sampling draws
  /// different worlds than Create for the same seed — both are valid
  /// samples, but answers differ between the two constructors.
  static Result<Engine> CreateDynamic(ProbGraph graph,
                                      const EngineOptions& options = {});

  /// Wraps pre-assembled serving state (the snapshot restart path): no
  /// sampling, no SCC runs, no closure rebuild — the engine answers its
  /// first query straight from `parts`. `options.index`/`options.seed` are
  /// ignored (the index already exists); admission-control options apply
  /// as in Create.
  static Result<Engine> FromParts(EngineParts parts,
                                  const EngineOptions& options = {});

  ~Engine();
  Engine(Engine&&) noexcept;
  Engine& operator=(Engine&&) noexcept;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes one request (a batch of one: same admission control, same
  /// error model).
  Result<Response> Run(const Request& request);

  /// Executes a batch. The outer Status rejects the whole batch (too big,
  /// too many batches in flight); the inner results are per-request and
  /// ordered like the input. Deterministic at every thread count when no
  /// deadlines are set.
  Result<std::vector<Result<Response>>> RunBatch(
      std::span<const Request> requests);

  /// Zero-allocation batch entry point for the serving data plane: executes
  /// `*requests[i]` (pointers let the caller gather a cross-connection
  /// batch without copying request payloads) into `*results`, which is
  /// resized to the batch and whose storage is reused call over call.
  /// Admission control, ordering, and determinism match RunBatch exactly;
  /// the returned Status is RunBatch's outer status (on error `*results`
  /// is left cleared). At a single-thread budget the batch runs inline on
  /// the caller with one reused scratch — no task dispatch, no heap
  /// traffic for fixed-size responses.
  Status RunBatchInto(std::span<const Request* const> requests,
                      std::vector<Result<Response>>* results);

  /// The graph the engine was BUILT from. For a dynamic engine this does
  /// not reflect applied updates (an immutable reference can't track a
  /// mutating graph) — use CaptureDynamicState()/fingerprint() for current
  /// state.
  const ProbGraph& graph() const;
  const CascadeIndex& index() const;
  const EngineOptions& options() const;
  /// Currently admitted Run/RunBatch calls (admission-control observability).
  uint32_t in_flight() const;

  // -- Dynamic-mode observability & drift-rebuild hooks -------------------
  /// True for CreateDynamic engines.
  bool dynamic() const;
  /// Applied updates since construction (0 for static engines and after a
  /// hot swap to a freshly rebuilt engine, modulo catch-up replay).
  uint64_t drift() const;
  /// Fingerprint of the CURRENT graph (updates included); for a static
  /// engine, of the build-time graph. Pairs with snapshot staleness checks.
  uint64_t fingerprint() const;
  /// Captures the current graph + journal position, consistent w.r.t.
  /// concurrent update batches. FailedPrecondition on static engines.
  Result<DynamicState> CaptureDynamicState() const;
  /// Updates applied after journal position `seq` (in application order).
  /// Empty for static engines.
  std::vector<GraphUpdate> JournalSince(uint64_t seq) const;

 private:
  Engine();
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace soi::service

#endif  // SOI_SERVICE_ENGINE_H_
