#include "service/engine.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <utility>

#include "core/typical_cascade.h"
#include "dynamic/dynamic_index.h"
#include "infmax/cover_engine.h"
#include "infmax/greedy_std.h"
#include "infmax/infmax_tc.h"
#include "infmax/spread_estimator.h"
#include "infmax/spread_oracle.h"
#include "obs/metrics.h"
#include "reliability/reliability.h"
#include "runtime/parallel_for.h"
#include "util/rng.h"

namespace soi::service {

namespace {

// Per-type latency histogram names (static storage: the registry keeps
// string_views only long enough to copy them, but literals are simplest).
const char* LatencyHistogramName(const Request& request) {
  switch (request.payload.index()) {
    case 0: return "service/latency_ns/typical";
    case 1: return "service/latency_ns/cascade";
    case 2: return "service/latency_ns/spread";
    case 3: return "service/latency_ns/seed_select";
    case 4: return "service/latency_ns/reliability";
    case 5: return "service/latency_ns/update";
  }
  return "service/latency_ns/unknown";
}

}  // namespace

const char* RequestTypeName(const Request& request) {
  switch (request.payload.index()) {
    case 0: return "typical";
    case 1: return "cascade";
    case 2: return "spread";
    case 3: return "seed_select";
    case 4: return "reliability";
    case 5: return "update";
  }
  return "unknown";
}

class Engine::Impl {
 public:
  Impl(ProbGraph graph, CascadeIndex index, const EngineOptions& options,
       std::optional<FlatSets> typical = std::nullopt,
       std::shared_ptr<const void> storage = nullptr)
      : graph_(std::move(graph)),
        index_(std::move(index)),
        options_(options),
        storage_(std::move(storage)) {
    if (typical.has_value()) {
      tc_cascades_ = std::move(*typical);
      tc_seeded_ = true;
    }
  }

  // Dynamic-mode constructor: the CascadeIndex lives inside the
  // DynamicIndex; index_ stays empty and idx() dispatches.
  Impl(ProbGraph graph, DynamicIndex dynamic, const EngineOptions& options)
      : graph_(std::move(graph)),
        options_(options),
        dynamic_(std::move(dynamic)) {}

  uint64_t NowNs() const {
    return options_.clock_ns != nullptr ? options_.clock_ns() : obs::NowNs();
  }

  Status AdoptSketches(const SketchParts& parts) {
    SOI_ASSIGN_OR_RETURN(SketchSpreadOracle oracle,
                         SketchSpreadOracle::FromParts(&index_, parts));
    std::lock_guard<std::mutex> lock(sketch_mutex_);
    sketch_ = std::make_unique<SketchSpreadOracle>(std::move(oracle));
    return Status::OK();
  }

  Result<std::vector<Result<Response>>> RunBatch(
      std::span<const Request> requests) {
    std::vector<Result<Response>> results;
    const Status status = RunBatchCore(
        requests.size(),
        [&](size_t i) -> const Request& { return requests[i]; }, &results);
    if (!status.ok()) return status;
    return results;
  }

  Status RunBatchInto(std::span<const Request* const> requests,
                      std::vector<Result<Response>>* results) {
    return RunBatchCore(
        requests.size(),
        [&](size_t i) -> const Request& { return *requests[i]; }, results);
  }

  // Shared batch core: `get(i)` yields request i, `*results` is resized to
  // the batch (storage reused call over call — this is what makes the
  // serving hot path allocation-free for fixed-size responses).
  template <typename GetRequest>
  Status RunBatchCore(size_t n, const GetRequest& get,
                      std::vector<Result<Response>>* results) {
    results->clear();
    if (n > options_.max_batch) {
      SOI_OBS_COUNTER_ADD("service/batches_rejected", 1);
      return Status::ResourceExhausted(
          "batch of " + std::to_string(n) +
          " requests exceeds max_batch=" + std::to_string(options_.max_batch) +
          "; split the batch");
    }
    // Admission: reserve an in-flight slot or reject. The slot is held for
    // the whole batch (RAII below).
    const uint32_t prior = in_flight_.fetch_add(1, std::memory_order_acq_rel);
    if (prior >= options_.max_in_flight) {
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      SOI_OBS_COUNTER_ADD("service/batches_rejected", 1);
      return Status::ResourceExhausted(
          "max_in_flight=" + std::to_string(options_.max_in_flight) +
          " batches already admitted; retry later");
    }
    struct SlotRelease {
      std::atomic<uint32_t>* counter;
      ~SlotRelease() { counter->fetch_sub(1, std::memory_order_acq_rel); }
    } release{&in_flight_};
    SOI_OBS_COUNTER_ADD("service/batches_admitted", 1);
    SOI_OBS_HISTOGRAM_RECORD("service/queue_depth", prior + 1);

    const uint64_t admit_ns = NowNs();
    // Pre-sized per-request slots (the placeholder — an empty first
    // alternative, no heap behind it — is overwritten by every item).
    results->resize(n, Result<Response>(Response()));
    bool update_batch = false;
    if (dynamic_.has_value()) {
      for (size_t i = 0; i < n && !update_batch; ++i) {
        update_batch = std::holds_alternative<UpdateRequest>(get(i).payload);
      }
    }
    if (update_batch) {
      // Updates mutate the index: the whole batch runs sequentially under
      // the exclusive state lock, in request order. Sequential execution
      // also makes mixed update+query batches deterministic at every
      // thread count (a query after an update sees it; before, doesn't).
      std::unique_lock<std::shared_mutex> lock(state_mutex_);
      Scratch scratch;
      for (size_t i = 0; i < n; ++i) {
        (*results)[i] = RunOne(get(i), admit_ns, &scratch);
      }
    } else if (PlannedChunks(n, /*grain=*/1) <= 1) {
      // Single-chunk batch (one thread, or one request): run inline. This
      // sidesteps ParallelForChunks' std::function wrapper, whose capture
      // list outgrows the small-object buffer and would heap-allocate on
      // every batch — the serving hot path at --threads 1 stays
      // allocation-free. Identical execution semantics: one chunk, one
      // scratch, request order.
      std::shared_lock<std::shared_mutex> lock(state_mutex_);
      Scratch scratch;
      for (size_t i = 0; i < n; ++i) {
        (*results)[i] = RunOne(get(i), admit_ns, &scratch);
      }
    } else {
      // Pure-query batch: shared state lock, parallel execution.
      std::shared_lock<std::shared_mutex> lock(state_mutex_);
      ParallelForChunks(
          0, n, /*grain=*/1,
          [&](uint32_t /*chunk*/, uint64_t begin, uint64_t end) {
            // Chunk-level scratch: reused across this chunk's requests,
            // invisible in the output (handlers are pure given the request).
            Scratch scratch;
            for (uint64_t i = begin; i < end; ++i) {
              (*results)[i] = RunOne(get(i), admit_ns, &scratch);
            }
          });
    }
    return Status::OK();
  }

  uint32_t in_flight() const {
    return in_flight_.load(std::memory_order_acquire);
  }

  const ProbGraph& graph() const { return graph_; }
  const CascadeIndex& index() const { return idx(); }
  const EngineOptions& options() const { return options_; }

  bool dynamic() const { return dynamic_.has_value(); }

  uint64_t drift() const {
    if (!dynamic_.has_value()) return 0;
    std::shared_lock<std::shared_mutex> lock(state_mutex_);
    return dynamic_->drift();
  }

  uint64_t fingerprint() const {
    if (!dynamic_.has_value()) return GraphFingerprint(graph_);
    std::shared_lock<std::shared_mutex> lock(state_mutex_);
    return dynamic_->fingerprint();
  }

  Result<DynamicState> CaptureDynamicState() const {
    if (!dynamic_.has_value()) {
      return Status::FailedPrecondition(
          "CaptureDynamicState: engine is static (built with Create/"
          "FromParts); only CreateDynamic engines track update state");
    }
    std::shared_lock<std::shared_mutex> lock(state_mutex_);
    DynamicState state;
    SOI_ASSIGN_OR_RETURN(state.graph, dynamic_->MaterializeGraph());
    state.journal_seq = journal_.size();
    return state;
  }

  std::vector<GraphUpdate> JournalSince(uint64_t seq) const {
    if (!dynamic_.has_value()) return {};
    std::shared_lock<std::shared_mutex> lock(state_mutex_);
    if (seq >= journal_.size()) return {};
    return std::vector<GraphUpdate>(journal_.begin() + seq, journal_.end());
  }

 private:
  // The serving index: owned directly (static mode) or by the DynamicIndex.
  // The DynamicIndex member is stable for the Impl's lifetime, so pointers
  // into idx() (scratch computers, the spread oracle) stay valid across
  // update batches — updates patch the object in place.
  const CascadeIndex& idx() const {
    return dynamic_.has_value() ? dynamic_->index() : index_;
  }

  struct Scratch {
    CascadeIndex::Workspace ws;
    std::optional<TypicalCascadeComputer> computer;
  };

  // Where an individual request gets answered, decided at pickup time.
  struct Route {
    bool use_sketch = false;
    bool degraded_deadline = false;  // auto flipped tier on deadline slack
    bool degraded_pressure = false;  // auto flipped tier on in-flight depth
  };

  static bool SketchCapable(const Request& request) {
    return std::holds_alternative<SpreadRequest>(request.payload) ||
           std::holds_alternative<SeedSelectRequest>(request.payload);
  }

  Result<Route> DecideRoute(const Request& request, bool expired,
                            uint64_t waited_ns, uint64_t timeout_ms) const {
    Route route;
    const uint32_t k = options_.sketch_k;
    switch (request.accuracy) {
      case Accuracy::kExact:
        return route;
      case Accuracy::kSketch:
        if (k == 0) {
          return Status::FailedPrecondition(
              "sketch tier disabled: start the engine with sketch_k > 0 "
              "(soi_cli serve --sketch-k) or load a snapshot that carries "
              "sketches");
        }
        if (!SketchCapable(request)) {
          return Status::FailedPrecondition(
              RequestTypeName(request) +
              std::string(" has no sketch path (accuracy:sketch applies to "
                          "spread and seed_select)"));
        }
        route.use_sketch = true;
        return route;
      case Accuracy::kAuto: {
        if (k == 0 || !SketchCapable(request)) return route;
        if (request.max_error > 0 &&
            SketchSpreadOracle::RelativeErrorBound(k) > request.max_error) {
          // The sketch tier cannot meet the requested bound; stay exact
          // even under pressure (correctness beats degradation).
          return route;
        }
        const uint32_t threshold = options_.sketch_pressure_in_flight != 0
                                       ? options_.sketch_pressure_in_flight
                                       : options_.max_in_flight;
        route.degraded_deadline =
            expired ||
            (timeout_ms != 0 && waited_ns * 2 > timeout_ms * 1'000'000ull);
        route.degraded_pressure =
            in_flight_.load(std::memory_order_acquire) >= threshold;
        route.use_sketch =
            route.degraded_deadline || route.degraded_pressure;
        return route;
      }
    }
    return route;
  }

  Result<Response> RunOne(const Request& request, uint64_t admit_ns,
                          Scratch* scratch) {
    // Deadline check at pickup: started requests always run to completion.
    const uint64_t timeout_ms = request.timeout_ms != 0
                                    ? request.timeout_ms
                                    : options_.default_timeout_ms;
    const uint64_t start_ns = NowNs();
    const bool expired =
        timeout_ms != 0 && start_ns - admit_ns > timeout_ms * 1'000'000ull;
    SOI_ASSIGN_OR_RETURN(
        const Route route,
        DecideRoute(request, expired, start_ns - admit_ns, timeout_ms));
    // Graceful degradation: an expired auto request whose route reached the
    // sketch tier is answered (approximately) instead of shed. Everything
    // else keeps the original deadline contract.
    if (expired &&
        !(request.accuracy == Accuracy::kAuto && route.use_sketch)) {
      SOI_OBS_COUNTER_ADD("service/requests_deadline_exceeded", 1);
      return Status::DeadlineExceeded(
          RequestTypeName(request) + std::string(" request expired after ") +
          std::to_string(timeout_ms) + "ms before execution started");
    }
    if (route.degraded_deadline) {
      SOI_OBS_COUNTER_ADD("service/degrade_deadline", 1);
    }
    if (route.degraded_pressure) {
      SOI_OBS_COUNTER_ADD("service/degrade_pressure", 1);
    }
    SOI_OBS_COUNTER_ADD(route.use_sketch ? "service/requests_tier_sketch"
                                         : "service/requests_tier_exact",
                        1);
    Result<Response> result = route.use_sketch ? DispatchSketch(request)
                                               : Dispatch(request, scratch);
    const uint64_t latency_ns = NowNs() - start_ns;
    if (result.ok()) result->meta.elapsed_us = latency_ns / 1000;
    SOI_OBS_HISTOGRAM_RECORD("service/latency_ns", latency_ns);
    SOI_OBS_HISTOGRAM_RECORD(LatencyHistogramName(request), latency_ns);
    if (result.ok()) {
      SOI_OBS_COUNTER_ADD("service/requests_ok", 1);
    } else {
      SOI_OBS_COUNTER_ADD("service/requests_invalid", 1);
    }
    return result;
  }

  Result<Response> Dispatch(const Request& request, Scratch* scratch) {
    return std::visit(
        [&](const auto& payload) -> Result<Response> {
          return Handle(payload, scratch);
        },
        request.payload);
  }

  // Sketch-tier answers for the two ops that have one. Routing guarantees
  // the op is sketch-capable and the tier is enabled before we get here.
  Result<Response> DispatchSketch(const Request& request) {
    SOI_ASSIGN_OR_RETURN(const SketchSpreadOracle* sk, EnsureSketches());
    Result<Response> result = [&]() -> Result<Response> {
      if (const auto* req = std::get_if<SpreadRequest>(&request.payload)) {
        SOI_ASSIGN_OR_RETURN(const double est, sk->EstimateSpread(req->seeds));
        return Response(SpreadResponse{est});
      }
      const auto& req = std::get<SeedSelectRequest>(request.payload);
      if (req.k == 0) {
        return Status::InvalidArgument("seed_select: k must be >= 1");
      }
      const uint32_t k = std::min<uint32_t>(req.k, idx().num_nodes());
      SOI_ASSIGN_OR_RETURN(GreedyResult r, sk->SelectSeeds(k));
      return ToSeedSelectResponse(std::move(r));
    }();
    if (result.ok()) {
      result->meta.tier = "sketch";
      result->meta.est_error = sk->relative_error_bound();
    }
    return result;
  }

  // Builds the sketch tier once (deterministically from the engine seed,
  // so an engine that lazily builds and one that adopted snapshot sketches
  // created with the same seed answer identically) and caches it. Reset by
  // update batches that touch worlds; the next sketch query rebuilds over
  // the patched index.
  Result<const SketchSpreadOracle*> EnsureSketches() {
    std::lock_guard<std::mutex> lock(sketch_mutex_);
    if (sketch_ == nullptr) {
      SOI_ASSIGN_OR_RETURN(
          SketchSpreadOracle oracle,
          SketchSpreadOracle::BuildDeterministic(idx(), options_.sketch_k,
                                                 options_.seed));
      sketch_ = std::make_unique<SketchSpreadOracle>(std::move(oracle));
    }
    return sketch_.get();
  }

  Result<Response> Handle(const TypicalCascadeRequest& req, Scratch* scratch) {
    SOI_RETURN_IF_ERROR(idx().ValidateSeeds(req.seeds));
    if (!scratch->computer.has_value()) scratch->computer.emplace(&idx());
    TypicalCascadeOptions options;
    options.median.local_search = req.local_search;
    SOI_ASSIGN_OR_RETURN(TypicalCascadeResult r,
                         scratch->computer->ComputeForSeeds(req.seeds, options));
    TypicalCascadeResponse response;
    response.cascade = std::move(r.cascade);
    response.in_sample_cost = r.in_sample_cost;
    response.mean_sample_size = r.mean_sample_size;
    return Response(std::move(response));
  }

  Result<Response> Handle(const CascadeRequest& req, Scratch* scratch) {
    SOI_ASSIGN_OR_RETURN(std::vector<NodeId> cascade,
                         idx().Cascade(req.seeds, req.world, &scratch->ws));
    return Response(CascadeResponse{std::move(cascade)});
  }

  Result<Response> Handle(const SpreadRequest& req, Scratch* /*scratch*/) {
    // Same SpreadEstimator interface the sketch tier implements; the exact
    // adapter answers from the closure cache (ExpectedReachableSize).
    const ExactSpreadEstimator exact(&idx());
    SOI_ASSIGN_OR_RETURN(const double spread, exact.EstimateSpread(req.seeds));
    return Response(SpreadResponse{spread});
  }

  Result<Response> Handle(const ReliabilityRequest& req, Scratch* /*scratch*/) {
    SOI_ASSIGN_OR_RETURN(std::vector<NodeId> nodes,
                         ReliabilitySearch(idx(), req.seeds, req.threshold));
    return Response(ReliabilityResponse{std::move(nodes)});
  }

  Result<Response> Handle(const SeedSelectRequest& req, Scratch* /*scratch*/) {
    if (req.k == 0) {
      return Status::InvalidArgument("seed_select: k must be >= 1");
    }
    if (req.method == "tc") {
      // tc_cascades_/tc_cover_ are immutable once EnsureTypicalCascades
      // returns (the mutex inside it publishes the cache), so selections
      // run unlocked and concurrently. The cover engine's inverted index is
      // built once here and amortized across every later selection.
      SOI_RETURN_IF_ERROR(EnsureTypicalCascades());
      const uint32_t k = std::min<uint32_t>(req.k, idx().num_nodes());
      if (k == 0) return ToSeedSelectResponse(GreedyResult{});
      return ToSeedSelectResponse(
          tc_cover_->Select(k, /*track_saturation=*/false));
    }
    if (req.method == "std") {
      GreedyStdOptions options;
      options.k = req.k;
      // The oracle is stateful (InfMaxStd resets and then commits into it),
      // so "std" selections are serialized on its mutex. Output is
      // deterministic: every run starts from a Reset() oracle.
      std::lock_guard<std::mutex> lock(oracle_mutex_);
      if (oracle_ == nullptr) {
        oracle_ = std::make_unique<SpreadOracle>(&idx());
      }
      SOI_ASSIGN_OR_RETURN(GreedyResult r, InfMaxStd(oracle_.get(), options));
      return ToSeedSelectResponse(std::move(r));
    }
    return Status::InvalidArgument("seed_select: unknown method '" +
                                   req.method + "' (expected tc or std)");
  }

  // Runs only on the sequential exclusive-lock path (see RunBatch): the
  // batch already holds the state lock, so the index, journal, and derived
  // caches can be mutated without further synchronization against queries.
  Result<Response> Handle(const UpdateRequest& req, Scratch* /*scratch*/) {
    if (!dynamic_.has_value()) {
      return Status::FailedPrecondition(
          "update requires a dynamic engine (soi_cli serve --dynamic / "
          "Engine::CreateDynamic); this engine serves a static index");
    }
    SOI_ASSIGN_OR_RETURN(const UpdateStats stats,
                         dynamic_->ApplyUpdates(req.ops));
    journal_.insert(journal_.end(), req.ops.begin(), req.ops.end());
    // Worlds changed => every derived cache (typical cover, spread oracle)
    // is stale. The DynamicIndex patched its own typical table; only the
    // engine-side structures over it need rebuilding, lazily.
    if (stats.affected_worlds > 0) {
      {
        std::lock_guard<std::mutex> lock(tc_mutex_);
        tc_ready_ = false;
        tc_status_ = Status::OK();
        tc_cover_.reset();
      }
      {
        std::lock_guard<std::mutex> lock(oracle_mutex_);
        oracle_.reset();
      }
      {
        std::lock_guard<std::mutex> lock(sketch_mutex_);
        sketch_.reset();
      }
    }
    UpdateResponse response;
    response.applied = stats.applied_ops;
    response.affected_worlds = stats.affected_worlds;
    response.affected_nodes = stats.affected_nodes;
    response.drift = stats.drift;
    return Response(response);
  }

  static Result<Response> ToSeedSelectResponse(GreedyResult r) {
    SeedSelectResponse response;
    response.seeds = std::move(r.seeds);
    if (!r.steps.empty()) response.objective = r.steps.back().objective_after;
    return Response(std::move(response));
  }

  // Computes the per-node typical cascades once (Algorithm 2 over all
  // nodes — the expensive half of InfMax_TC) and caches them for every
  // later "tc" seed selection. Concurrent first callers serialize here.
  // When the table was seeded at construction (EngineParts::typical, e.g.
  // read from a snapshot), the sweep is skipped and only the cover engine's
  // inverted index is built; the sweep is deterministic, so a seeded table
  // yields byte-identical selections.
  Status EnsureTypicalCascades() {
    std::lock_guard<std::mutex> lock(tc_mutex_);
    if (tc_ready_) return tc_status_;
    if (dynamic_.has_value()) {
      // The DynamicIndex owns and incrementally patches the typical table;
      // the engine only (re)builds the cover engine's inverted index over
      // it. After the first build, an update batch costs a per-changed-node
      // patch plus this cover rebuild — never a full sweep.
      tc_status_ = dynamic_->EnsureTypical();
      if (tc_status_.ok()) {
        tc_cover_.emplace(&dynamic_->typical(), idx().num_nodes());
      }
      tc_ready_ = true;
      return tc_status_;
    }
    if (tc_seeded_) {
      tc_cover_.emplace(&tc_cascades_, index_.num_nodes());
      tc_status_ = Status::OK();
      tc_ready_ = true;
      return tc_status_;
    }
    TypicalCascadeComputer computer(&index_);
    auto sweep = computer.ComputeAllFlat();
    if (sweep.ok()) {
      tc_cascades_ = std::move(sweep->cascades);
      tc_cover_.emplace(&tc_cascades_, index_.num_nodes());
      tc_status_ = Status::OK();
    } else {
      tc_status_ = sweep.status();
    }
    tc_ready_ = true;
    return tc_status_;
  }

  ProbGraph graph_;
  CascadeIndex index_;  // empty in dynamic mode (idx() dispatches)
  EngineOptions options_;
  // Dynamic mode: the updatable index plus the update journal (everything
  // applied since construction, for drift-rebuild catch-up replay). Both
  // are guarded by state_mutex_: update batches hold it exclusively,
  // query batches and state captures share it.
  std::optional<DynamicIndex> dynamic_;
  std::vector<GraphUpdate> journal_;
  mutable std::shared_mutex state_mutex_;
  // Keeps external backing storage (a snapshot mapping) alive while any
  // borrowed view in this Impl might read it. Declaration order vs the
  // views is immaterial: destroying a borrowed view never dereferences its
  // spans.
  std::shared_ptr<const void> storage_;
  std::atomic<uint32_t> in_flight_{0};

  std::mutex tc_mutex_;  // guards tc_ready_/tc_status_/tc_cascades_/tc_cover_
  bool tc_seeded_ = false;  // tc_cascades_ pre-filled at construction
  bool tc_ready_ = false;
  Status tc_status_;
  FlatSets tc_cascades_;  // node v -> typical cascade C*_v
  std::optional<CoverEngine> tc_cover_;  // selection kernel over tc_cascades_

  std::mutex oracle_mutex_;  // serializes stateful "std" selections
  std::unique_ptr<SpreadOracle> oracle_;

  std::mutex sketch_mutex_;  // guards the lazily built sketch tier
  std::unique_ptr<SketchSpreadOracle> sketch_;
};

Engine::Engine() = default;
Engine::~Engine() = default;
Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;

namespace {

Status ValidateEngineOptions(const EngineOptions& options) {
  if (options.max_batch == 0) {
    return Status::InvalidArgument("EngineOptions: max_batch must be >= 1");
  }
  if (options.max_in_flight == 0) {
    return Status::InvalidArgument("EngineOptions: max_in_flight must be >= 1");
  }
  if (options.sketch_k != 0 && options.sketch_k < 3) {
    return Status::InvalidArgument(
        "EngineOptions: sketch_k must be >= 3 (the sketch tier's "
        "1/sqrt(k-2) error bound is undefined below that) or 0 to disable "
        "the tier");
  }
  return Status::OK();
}

}  // namespace

Result<Engine> Engine::Create(ProbGraph graph, const EngineOptions& options) {
  SOI_RETURN_IF_ERROR(ValidateEngineOptions(options));
  if (options.threads != 0) SetGlobalThreads(options.threads);
  Rng rng(options.seed);
  SOI_ASSIGN_OR_RETURN(CascadeIndex index,
                       CascadeIndex::Build(graph, options.index, &rng));
  Engine engine;
  engine.impl_ =
      std::make_unique<Impl>(std::move(graph), std::move(index), options);
  return engine;
}

Result<Engine> Engine::CreateDynamic(ProbGraph graph,
                                     const EngineOptions& options) {
  SOI_RETURN_IF_ERROR(ValidateEngineOptions(options));
  if (options.threads != 0) SetGlobalThreads(options.threads);
  SOI_ASSIGN_OR_RETURN(
      DynamicIndex dynamic,
      DynamicIndex::Build(graph, options.index, options.seed));
  Engine engine;
  engine.impl_ =
      std::make_unique<Impl>(std::move(graph), std::move(dynamic), options);
  return engine;
}

Result<Engine> Engine::FromParts(EngineParts parts,
                                 const EngineOptions& options) {
  EngineOptions effective = options;
  if (parts.sketches.has_value()) {
    if (effective.sketch_k != 0 &&
        effective.sketch_k != parts.sketches->k) {
      return Status::InvalidArgument(
          "EngineParts: sketches were built with k=" +
          std::to_string(parts.sketches->k) + " but options request " +
          std::to_string(effective.sketch_k) +
          "; drop sketch_k to adopt the parts' k");
    }
    effective.sketch_k = parts.sketches->k;
  }
  SOI_RETURN_IF_ERROR(ValidateEngineOptions(effective));
  if (parts.graph.num_nodes() != parts.index.num_nodes()) {
    return Status::InvalidArgument(
        "EngineParts: graph has " + std::to_string(parts.graph.num_nodes()) +
        " nodes but index covers " + std::to_string(parts.index.num_nodes()));
  }
  if (parts.typical.has_value() &&
      parts.typical->num_sets() != parts.index.num_nodes()) {
    return Status::InvalidArgument(
        "EngineParts: typical table has " +
        std::to_string(parts.typical->num_sets()) +
        " sets, expected one per node");
  }
  if (effective.threads != 0) SetGlobalThreads(effective.threads);
  Engine engine;
  engine.impl_ = std::make_unique<Impl>(
      std::move(parts.graph), std::move(parts.index), effective,
      std::move(parts.typical), std::move(parts.storage));
  if (parts.sketches.has_value()) {
    SOI_RETURN_IF_ERROR(engine.impl_->AdoptSketches(*parts.sketches));
  }
  return engine;
}

Result<Response> Engine::Run(const Request& request) {
  SOI_ASSIGN_OR_RETURN(std::vector<Result<Response>> results,
                       RunBatch(std::span<const Request>(&request, 1)));
  return std::move(results[0]);
}

Result<std::vector<Result<Response>>> Engine::RunBatch(
    std::span<const Request> requests) {
  return impl_->RunBatch(requests);
}

Status Engine::RunBatchInto(std::span<const Request* const> requests,
                            std::vector<Result<Response>>* results) {
  return impl_->RunBatchInto(requests, results);
}

const ProbGraph& Engine::graph() const { return impl_->graph(); }
const CascadeIndex& Engine::index() const { return impl_->index(); }
const EngineOptions& Engine::options() const { return impl_->options(); }
uint32_t Engine::in_flight() const { return impl_->in_flight(); }
bool Engine::dynamic() const { return impl_->dynamic(); }
uint64_t Engine::drift() const { return impl_->drift(); }
uint64_t Engine::fingerprint() const { return impl_->fingerprint(); }
Result<DynamicState> Engine::CaptureDynamicState() const {
  return impl_->CaptureDynamicState();
}
std::vector<GraphUpdate> Engine::JournalSince(uint64_t seq) const {
  return impl_->JournalSince(seq);
}

}  // namespace soi::service
