#include "service/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "service/protocol.h"

namespace soi::service {

namespace {

// Low bit of an epoll data pointer distinguishes a connection's dedicated
// write-side entry (ServePair with in_fd != out_fd) from its read-side
// entry. Conn objects are heap-allocated and at least pointer-aligned, so
// the bit is always free.
constexpr uintptr_t kOutTag = 1;

// True when `fd` has data ready right now (used by the blocking fallback
// driver to decide whether to keep accumulating a batch or flush).
bool ReadableNow(int fd) {
  struct pollfd pfd{fd, POLLIN, 0};
  return ::poll(&pfd, 1, /*timeout_ms=*/0) > 0 &&
         (pfd.revents & (POLLIN | POLLHUP)) != 0;
}

Status ErrnoStatus(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

class EventLoop::Impl {
 public:
  Impl(Engine* engine, const EngineHandle* handle,
       const EventLoopOptions& options)
      : engine_(engine),
        handle_(handle),
        options_(options),
        batch_max_(options.batch_max < 1 ? 1 : options.batch_max) {}

  ~Impl() {
    // Normal exits drain conns_ first; this only fires on fatal error paths.
    for (auto& up : conns_) ReleaseFds(up.get());
    conns_.clear();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    CloseEpoll();
  }

  Status ServePair(int in_fd, int out_fd);
  Status ServeListener(int listen_fd, uint32_t max_connections);

 private:
  // One parsed-but-not-yet-executed request line. Slots are pooled per
  // connection (slots_used marks the live prefix), so the ProtocolRequest's
  // internal storage — seed vectors, method strings, the payload variant's
  // alternative — is reused across requests: the steady-state hot path
  // performs no heap allocation.
  struct Slot {
    ProtocolRequest req;
    std::string error_line;  // pre-formatted response when is_error
    bool is_error = false;
    uint64_t recv_ns = 0;
  };

  struct Conn {
    int in_fd = -1;
    int out_fd = -1;
    bool owns_fds = false;   // accepted socket: close on reap
    bool is_socket = false;  // use send(MSG_NOSIGNAL) instead of write
    int saved_in_flags = -1;   // borrowed fds: O_NONBLOCK state to restore
    int saved_out_flags = -1;
    uint32_t in_mask = 0;   // current epoll interest (0 = entry removed)
    uint32_t out_mask = 0;  // dedicated out entry (pair mode only)
    bool read_closed = false;
    bool discarding = false;  // oversized line: drop until next '\n'
    bool dead = false;        // fatal I/O error; reap asap
    bool done = false;        // EOF + drained; reap gracefully
    Status status = Status::OK();
    std::string in_buf;
    size_t in_head = 0;  // parse cursor into in_buf
    std::string out_buf;
    size_t out_head = 0;  // write cursor into out_buf
    std::vector<Slot> slots;
    size_t slots_used = 0;  // live prefix of slots == pending requests

    size_t pending_out() const { return out_buf.size() - out_head; }
  };

  Status InitEpoll() {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd_ < 0) return ErrnoStatus("epoll_create1 failed");
    return Status::OK();
  }

  void CloseEpoll() {
    if (epfd_ >= 0) {
      ::close(epfd_);
      epfd_ = -1;
    }
  }

  void Poll() {
    if (options_.poll != nullptr && *options_.poll) (*options_.poll)();
  }

  Conn* AddConn(int in_fd, int out_fd, bool owns) {
    conns_.push_back(std::make_unique<Conn>());
    Conn* c = conns_.back().get();
    c->in_fd = in_fd;
    c->out_fd = out_fd;
    c->owns_fds = owns;
    c->is_socket = owns;
    SOI_OBS_COUNTER_ADD("serve/connections_opened", 1);
    return c;
  }

  void SetNonBlocking(Conn* c) {
    c->saved_in_flags = ::fcntl(c->in_fd, F_GETFL);
    if (c->saved_in_flags >= 0) {
      ::fcntl(c->in_fd, F_SETFL, c->saved_in_flags | O_NONBLOCK);
    }
    if (c->out_fd != c->in_fd) {
      c->saved_out_flags = ::fcntl(c->out_fd, F_GETFL);
      if (c->saved_out_flags >= 0) {
        ::fcntl(c->out_fd, F_SETFL, c->saved_out_flags | O_NONBLOCK);
      }
    }
  }

  void ReleaseFds(Conn* c) {
    if (c->owns_fds) {
      ::close(c->in_fd);
      if (c->out_fd != c->in_fd) ::close(c->out_fd);
      return;
    }
    // Borrowed descriptors: restore the O_NONBLOCK state we changed.
    if (c->saved_in_flags >= 0) ::fcntl(c->in_fd, F_SETFL, c->saved_in_flags);
    if (c->out_fd != c->in_fd && c->saved_out_flags >= 0) {
      ::fcntl(c->out_fd, F_SETFL, c->saved_out_flags);
    }
  }

  // Registers the connection's read side (and probes the write side when it
  // is a distinct descriptor). Returns 0 or the failing errno — EPERM means
  // the descriptor is not epoll-able (a regular file) and the caller should
  // fall back to the blocking driver.
  int RegisterConn(Conn* c) {
    if (c->out_fd != c->in_fd) {
      // Probe-only ADD/DEL: the real out entry is armed lazily by
      // UpdateInterest once output is pending, but an un-epollable stdout
      // must be detected now, while falling back is still possible.
      struct epoll_event probe {};
      probe.data.ptr = this;
      if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, c->out_fd, &probe) != 0) {
        return errno;
      }
      ::epoll_ctl(epfd_, EPOLL_CTL_DEL, c->out_fd, nullptr);
    }
    struct epoll_event ev {};
    ev.events = EPOLLIN;
    ev.data.ptr = c;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, c->in_fd, &ev) != 0) return errno;
    c->in_mask = EPOLLIN;
    return 0;
  }

  // Brings one epoll entry to `desired` interest. Entries with no interest
  // are removed outright (not parked at mask 0): epoll reports EPOLLHUP /
  // EPOLLERR regardless of the requested mask, and a half-dead connection
  // parked at mask 0 would spin the loop.
  void ApplyMask(int fd, uint32_t desired, uint32_t* current, void* ptr) {
    if (desired == *current) return;
    if (desired == 0) {
      ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
    } else {
      struct epoll_event ev {};
      ev.events = desired;
      ev.data.ptr = ptr;
      ::epoll_ctl(epfd_, *current == 0 ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, fd,
                  &ev);
    }
    *current = desired;
  }

  void UpdateInterest(Conn* c) {
    if (blocking_ || c->dead || c->done) return;
    const bool over_backpressure =
        options_.max_output_bytes != 0 &&
        c->pending_out() > options_.max_output_bytes;
    const bool want_in = !c->read_closed && !over_backpressure;
    const bool want_out = c->pending_out() > 0;
    if (c->in_fd == c->out_fd) {
      const uint32_t mask =
          (want_in ? EPOLLIN : 0u) | (want_out ? EPOLLOUT : 0u);
      ApplyMask(c->in_fd, mask, &c->in_mask, c);
      return;
    }
    ApplyMask(c->in_fd, want_in ? EPOLLIN : 0u, &c->in_mask, c);
    ApplyMask(c->out_fd, want_out ? EPOLLOUT : 0u, &c->out_mask,
              reinterpret_cast<void*>(reinterpret_cast<uintptr_t>(c) |
                                      kOutTag));
  }

  void MarkDead(Conn* c, Status status) {
    if (c->dead) return;
    c->dead = true;
    c->status = std::move(status);
    // Drop undelivered work so the global pending count stays consistent.
    total_pending_ -= c->slots_used;
    c->slots_used = 0;
  }

  void MaybeFinish(Conn* c) {
    if (c->dead || c->done) return;
    if (c->read_closed && c->slots_used == 0 && c->pending_out() == 0) {
      c->done = true;
    }
  }

  void ReapConns() {
    for (size_t i = 0; i < conns_.size();) {
      Conn* c = conns_[i].get();
      if (!c->dead && !c->done) {
        ++i;
        continue;
      }
      if (c->in_mask != 0) ::epoll_ctl(epfd_, EPOLL_CTL_DEL, c->in_fd, nullptr);
      if (c->out_fd != c->in_fd && c->out_mask != 0) {
        ::epoll_ctl(epfd_, EPOLL_CTL_DEL, c->out_fd, nullptr);
      }
      ReleaseFds(c);
      SOI_OBS_COUNTER_ADD("serve/connections_closed", 1);
      if (!c->status.ok()) SOI_OBS_COUNTER_ADD("service/connections_failed", 1);
      pair_status_ = c->status;
      conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(i));
    }
  }

  Slot* AcquireSlot(Conn* c) {
    if (c->slots_used == c->slots.size()) c->slots.emplace_back();
    Slot* s = &c->slots[c->slots_used++];
    if (total_pending_ == 0 && options_.batch_window_us != 0) {
      flush_deadline_ns_ =
          obs::NowNs() + static_cast<uint64_t>(options_.batch_window_us) * 1000;
    }
    ++total_pending_;
    return s;
  }

  void HandleLine(Conn* c, std::string_view line) {
    // Skip blank lines (a trailing newline at EOF is not a request).
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) return;
    Slot* s = AcquireSlot(c);
    s->recv_ns = obs::NowNs();
    const Status st = ParseRequestLineInto(line, &s->req);
    if (st.ok()) {
      s->is_error = false;
      return;
    }
    SOI_OBS_COUNTER_ADD("service/lines_malformed", 1);
    s->is_error = true;
    s->error_line.clear();
    AppendResponseLine(&s->error_line, SalvageId(line), SalvageVersion(line),
                       Result<Response>(st));
  }

  // `prefix` is whatever of the oversized line has been seen so far — enough
  // for a best-effort id/version salvage even when the tail was never read.
  void OversizedLine(Conn* c, std::string_view prefix) {
    SOI_OBS_COUNTER_ADD("service/lines_malformed", 1);
    SOI_OBS_COUNTER_ADD("serve/lines_oversized", 1);
    Slot* s = AcquireSlot(c);
    s->recv_ns = obs::NowNs();
    s->is_error = true;
    s->error_line.clear();
    AppendResponseLine(
        &s->error_line, SalvageId(prefix), SalvageVersion(prefix),
        Result<Response>(Status::InvalidArgument(
            "request line exceeds max_line_bytes=" +
            std::to_string(options_.max_line_bytes) + "; line dropped")));
  }

  // Consumes complete lines from the connection buffer; flushes whenever the
  // cross-connection pending count reaches batch_max.
  void ParseBuffered(Conn* c) {
    while (true) {
      const size_t nl = c->in_buf.find('\n', c->in_head);
      if (c->discarding) {
        if (nl == std::string::npos) {
          // Still inside the oversized line: drop it all, keep discarding.
          c->in_buf.clear();
          c->in_head = 0;
          return;
        }
        c->in_head = nl + 1;
        c->discarding = false;  // resynchronized
        continue;
      }
      if (nl == std::string::npos) {
        if (options_.max_line_bytes != 0 &&
            c->in_buf.size() - c->in_head > options_.max_line_bytes) {
          // The line guard: answer now, drop the buffered prefix, and skip
          // input until the next newline — the buffer never grows without
          // bound on a newline-less stream.
          OversizedLine(c, std::string_view(c->in_buf).substr(c->in_head));
          c->discarding = true;
          c->in_buf.clear();
          c->in_head = 0;
          if (total_pending_ >= batch_max_) FlushAndWrite();
          return;
        }
        break;
      }
      const std::string_view line =
          std::string_view(c->in_buf).substr(c->in_head, nl - c->in_head);
      c->in_head = nl + 1;
      if (options_.max_line_bytes != 0 &&
          line.size() > options_.max_line_bytes) {
        OversizedLine(c, line);
      } else {
        HandleLine(c, line);
      }
      if (total_pending_ >= batch_max_) {
        FlushAndWrite();
        if (c->dead) return;
      }
    }
    // Compact consumed bytes; clear() keeps capacity, so a warm connection
    // re-reads into the same storage.
    if (c->in_head == c->in_buf.size()) {
      c->in_buf.clear();
    } else if (c->in_head > 0) {
      c->in_buf.erase(0, c->in_head);
    }
    c->in_head = 0;
  }

  void HandleEofTail(Conn* c) {
    // A trailing line without '\n' still counts.
    if (c->in_head < c->in_buf.size() && !c->discarding) {
      const std::string_view line =
          std::string_view(c->in_buf).substr(c->in_head);
      if (options_.max_line_bytes != 0 &&
          line.size() > options_.max_line_bytes) {
        OversizedLine(c, line);
      } else {
        HandleLine(c, line);
      }
    }
    c->in_buf.clear();
    c->in_head = 0;
    c->discarding = false;
  }

  // Executes everything pending across all connections as chunks of at most
  // batch_max requests, in deterministic order: connection registration
  // order, then per-connection arrival order. Responses are appended to each
  // connection's output buffer in its own request order; pre-formatted error
  // slots force the chunk before them to run first, so a malformed line's
  // response still lands exactly in sequence.
  void Flush() {
    if (total_pending_ == 0) return;
    // Acquire once per flush: the shared_ptr pins the engine (and any
    // snapshot mapping it anchors), so a concurrent Swap() retires the old
    // engine only after every chunk of this flush completes.
    std::shared_ptr<Engine> acquired;
    Engine* engine = engine_;
    if (handle_ != nullptr) {
      acquired = handle_->Acquire();
      engine = acquired.get();
    }
    batch_reqs_.clear();
    batch_slots_.clear();
    batch_conns_.clear();
    for (auto& up : conns_) {
      Conn* c = up.get();
      if (c->dead) continue;
      for (size_t i = 0; i < c->slots_used; ++i) {
        Slot* s = &c->slots[i];
        if (s->is_error) {
          RunChunk(engine);
          c->out_buf.append(s->error_line);
          if (obs::Enabled()) {
            SOI_OBS_HISTOGRAM_RECORD("serve/request_latency_us",
                                     (obs::NowNs() - s->recv_ns) / 1000);
          }
          continue;
        }
        batch_reqs_.push_back(&s->req.request);
        batch_slots_.push_back(s);
        batch_conns_.push_back(c);
        if (batch_reqs_.size() >= batch_max_) RunChunk(engine);
      }
      c->slots_used = 0;  // slot storage stays pooled for reuse
    }
    RunChunk(engine);
    total_pending_ = 0;
  }

  void RunChunk(Engine* engine) {
    if (batch_reqs_.empty()) return;
    SOI_OBS_HISTOGRAM_RECORD("serve/batch_size", batch_reqs_.size());
    const Status status = engine->RunBatchInto(batch_reqs_, &batch_results_);
    const uint64_t done_ns = obs::Enabled() ? obs::NowNs() : 0;
    for (size_t i = 0; i < batch_slots_.size(); ++i) {
      Slot* s = batch_slots_[i];
      std::string* out = &batch_conns_[i]->out_buf;
      if (status.ok()) {
        AppendResponseLine(out, s->req.id, s->req.version, batch_results_[i]);
      } else {
        // Batch-level rejection (admission control): every request in the
        // chunk gets the same error response.
        AppendResponseLine(out, s->req.id, s->req.version,
                           Result<Response>(status));
      }
      if (done_ns != 0) {
        SOI_OBS_HISTOGRAM_RECORD("serve/request_latency_us",
                                 (done_ns - s->recv_ns) / 1000);
      }
    }
    batch_reqs_.clear();
    batch_slots_.clear();
    batch_conns_.clear();
  }

  // Non-blocking write of whatever is pending; EAGAIN leaves the rest for
  // EPOLLOUT, a hard error kills the connection.
  void TryWrite(Conn* c) {
    while (c->pending_out() > 0) {
      const char* data = c->out_buf.data() + c->out_head;
      const size_t len = c->out_buf.size() - c->out_head;
      const ssize_t n = c->is_socket ? ::send(c->out_fd, data, len,
                                              MSG_NOSIGNAL)
                                     : ::write(c->out_fd, data, len);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        MarkDead(c, ErrnoStatus("write failed"));
        return;
      }
      c->out_head += static_cast<size_t>(n);
    }
    c->out_buf.clear();  // keeps capacity: warm connections never realloc
    c->out_head = 0;
  }

  void AfterFlushWrites() {
    for (auto& up : conns_) {
      Conn* c = up.get();
      if (c->dead || c->done) continue;
      if (c->pending_out() > 0) TryWrite(c);
      if (c->dead) continue;
      UpdateInterest(c);
      MaybeFinish(c);
    }
  }

  void FlushAndWrite() {
    Flush();
    if (!blocking_) AfterFlushWrites();
  }

  void HandleReadable(Conn* c) {
    if (c->dead || c->done || c->read_closed) return;
    if (options_.max_output_bytes != 0 &&
        c->pending_out() > options_.max_output_bytes) {
      return;  // backpressured; a stale event raced the interest update
    }
    char chunk[1 << 16];
    const ssize_t n = ::read(c->in_fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
      MarkDead(c, ErrnoStatus("read failed"));
      return;
    }
    if (n == 0) {
      c->read_closed = true;
      HandleEofTail(c);
      UpdateInterest(c);
      MaybeFinish(c);
      return;
    }
    c->in_buf.append(chunk, static_cast<size_t>(n));
    ParseBuffered(c);
    if (c->dead) return;
    UpdateInterest(c);
  }

  // Event on a dedicated write-side entry (pair mode). With nothing pending
  // the entry is deregistered, so an event here normally means writable; an
  // ERR/HUP with an empty buffer means the reader vanished for good.
  void HandleOutEvent(Conn* c, uint32_t events) {
    if (c->pending_out() > 0) {
      TryWrite(c);
      if (c->dead) return;
      UpdateInterest(c);
      MaybeFinish(c);
      return;
    }
    if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
      if (c->read_closed && c->slots_used == 0) {
        c->done = true;
      } else {
        MarkDead(c, Status::IOError("write failed: peer closed the read side"));
      }
    }
  }

  void HandleListener() {
    while (listen_fd_ >= 0) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == ECONNABORTED || errno == EPROTO) {
          SOI_OBS_COUNTER_ADD("service/connections_failed", 1);
          continue;
        }
        // Hard accept failure (e.g. EMFILE): a level-triggered listener
        // would spin, so stop accepting, drain what we have, and surface
        // the error after the loop exits.
        accept_status_ = ErrnoStatus("accept failed");
        CloseListener();
        return;
      }
      SOI_OBS_COUNTER_ADD("service/connections", 1);
      Conn* c = AddConn(fd, fd, /*owns=*/true);
      const int err = RegisterConn(c);
      if (err != 0) {
        errno = err;
        MarkDead(c, ErrnoStatus("epoll_ctl failed"));
      }
      ++accepted_;
      if (max_connections_ != 0 && accepted_ >= max_connections_) {
        CloseListener();
        return;
      }
    }
  }

  void CloseListener() {
    if (listen_fd_ < 0) return;
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  void Dispatch(const struct epoll_event& ev) {
    void* p = ev.data.ptr;
    if (p == this) {
      HandleListener();
      return;
    }
    const uintptr_t raw = reinterpret_cast<uintptr_t>(p);
    Conn* c = reinterpret_cast<Conn*>(raw & ~kOutTag);
    if (c->dead || c->done) return;
    if ((raw & kOutTag) != 0) {
      HandleOutEvent(c, ev.events);
      return;
    }
    if ((ev.events & EPOLLOUT) != 0) {
      TryWrite(c);
      if (c->dead) return;
      UpdateInterest(c);
      MaybeFinish(c);
      if (c->done) return;
    }
    if ((ev.events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) HandleReadable(c);
  }

  // How long the next epoll_wait may block. No pending work: forever.
  // Pending with no window: 0 — flush fires the moment the ready set drains
  // (the wait returns no events). Pending with a window: until the deadline.
  int ComputeTimeoutMs() const {
    if (total_pending_ == 0) return -1;
    if (options_.batch_window_us == 0) return 0;
    const uint64_t now = obs::NowNs();
    if (now >= flush_deadline_ns_) return 0;
    const uint64_t ms = (flush_deadline_ns_ - now + 999999) / 1000000;
    return ms > static_cast<uint64_t>(INT_MAX) ? INT_MAX
                                               : static_cast<int>(ms);
  }

  void MaybeFlush(int nevents) {
    if (total_pending_ == 0) return;
    const bool due = options_.batch_window_us == 0
                         ? nevents == 0
                         : obs::NowNs() >= flush_deadline_ns_;
    if (due) FlushAndWrite();
  }

  Status Run() {
    struct epoll_event events[64];
    while (listen_fd_ >= 0 || !conns_.empty()) {
      const int timeout = ComputeTimeoutMs();
      const int n = ::epoll_wait(epfd_, events, 64, timeout);
      if (n < 0) {
        if (errno == EINTR) {
          // A signal woke the wait (e.g. SIGHUP requesting a reload): give
          // the poll hook a chance before blocking again.
          Poll();
          continue;
        }
        return ErrnoStatus("epoll_wait failed");
      }
      Poll();
      for (int i = 0; i < n; ++i) Dispatch(events[i]);
      MaybeFlush(n);
      ReapConns();
    }
    return Status::OK();
  }

  Status WriteAllPending(Conn* c) {
    std::string_view data(c->out_buf);
    data.remove_prefix(c->out_head);
    while (!data.empty()) {
      const ssize_t n = ::write(c->out_fd, data.data(), data.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write failed");
      }
      data.remove_prefix(static_cast<size_t>(n));
    }
    c->out_buf.clear();
    c->out_head = 0;
    return Status::OK();
  }

  // Blocking driver for descriptors epoll refuses (regular files, e.g.
  // `serve --stdin < requests.txt`). Same parse/batch/flush machinery, same
  // greedy batching rule as the historical stream server: lines already
  // buffered are grouped, and the batch executes once the input runs dry.
  Status RunBlockingPair(int in_fd, int out_fd) {
    blocking_ = true;
    Conn* c = AddConn(in_fd, out_fd, /*owns=*/false);
    char chunk[1 << 16];
    while (true) {
      const ssize_t n = ::read(c->in_fd, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) {
          Poll();
          continue;
        }
        return ErrnoStatus("read failed");
      }
      Poll();
      if (n == 0) {
        HandleEofTail(c);
        Flush();
        return WriteAllPending(c);
      }
      c->in_buf.append(chunk, static_cast<size_t>(n));
      ParseBuffered(c);
      // Nothing more buffered right now: execute what we have instead of
      // stalling the client's responses.
      if (total_pending_ != 0 && !ReadableNow(c->in_fd)) Flush();
      SOI_RETURN_IF_ERROR(WriteAllPending(c));
    }
  }

  Engine* engine_;
  const EngineHandle* handle_;
  const EventLoopOptions options_;
  const uint32_t batch_max_;

  int epfd_ = -1;
  int listen_fd_ = -1;
  uint32_t max_connections_ = 0;
  uint32_t accepted_ = 0;
  bool blocking_ = false;
  size_t total_pending_ = 0;
  uint64_t flush_deadline_ns_ = 0;
  std::vector<std::unique_ptr<Conn>> conns_;
  Status pair_status_ = Status::OK();
  Status accept_status_ = Status::OK();

  // Reused flush scratch (cleared, never shrunk): the gather/demux hot path
  // allocates nothing once warm.
  std::vector<const Request*> batch_reqs_;
  std::vector<Slot*> batch_slots_;
  std::vector<Conn*> batch_conns_;
  std::vector<Result<Response>> batch_results_;
};

Status EventLoop::Impl::ServePair(int in_fd, int out_fd) {
  SOI_RETURN_IF_ERROR(InitEpoll());
  Conn* c = AddConn(in_fd, out_fd, /*owns=*/false);
  SetNonBlocking(c);
  const int err = RegisterConn(c);
  if (err == EPERM) {
    // Regular files are not epoll-able. Restore blocking mode and run the
    // identical machinery over blocking reads.
    ReleaseFds(c);
    conns_.clear();
    CloseEpoll();
    return RunBlockingPair(in_fd, out_fd);
  }
  if (err != 0) {
    errno = err;
    const Status status = ErrnoStatus("epoll_ctl failed");
    ReleaseFds(c);
    conns_.clear();
    CloseEpoll();
    return status;
  }
  const Status run = Run();
  CloseEpoll();
  if (!run.ok()) return run;
  return pair_status_;
}

Status EventLoop::Impl::ServeListener(int listen_fd, uint32_t max_connections) {
  const Status init = InitEpoll();
  if (!init.ok()) {
    ::close(listen_fd);
    return init;
  }
  const int flags = ::fcntl(listen_fd, F_GETFL);
  if (flags >= 0) ::fcntl(listen_fd, F_SETFL, flags | O_NONBLOCK);
  listen_fd_ = listen_fd;
  max_connections_ = max_connections;
  struct epoll_event ev {};
  ev.events = EPOLLIN;
  ev.data.ptr = this;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    const Status status = ErrnoStatus("epoll_ctl failed");
    CloseListener();
    CloseEpoll();
    return status;
  }
  const Status run = Run();
  // Fatal exits leave the listener and live conns behind; the destructor
  // path would close them, but do it eagerly so callers can rebind.
  CloseListener();
  for (auto& up : conns_) ReleaseFds(up.get());
  conns_.clear();
  CloseEpoll();
  if (!run.ok()) return run;
  return accept_status_;
}

EventLoop::EventLoop(Engine* engine, const EngineHandle* handle,
                     const EventLoopOptions& options)
    : impl_(std::make_unique<Impl>(engine, handle, options)) {}

EventLoop::~EventLoop() = default;

Status EventLoop::ServePair(int in_fd, int out_fd) {
  return impl_->ServePair(in_fd, out_fd);
}

Status EventLoop::ServeListener(int listen_fd, uint32_t max_connections) {
  return impl_->ServeListener(listen_fd, max_connections);
}

}  // namespace soi::service
