#ifndef SOI_SERVICE_HOT_SWAP_H_
#define SOI_SERVICE_HOT_SWAP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "service/engine.h"

namespace soi::service {

/// Atomic hot-swap of the serving engine: the server loop Acquire()s the
/// current engine per batch, a reloader thread (or a SIGHUP handler's poll
/// hook) Swap()s in a replacement built from a fresh snapshot, and the old
/// engine — together with whatever mapping it anchors — retires when the
/// last in-flight batch drops its shared_ptr. No request is ever dropped or
/// answered by a half-replaced engine: a batch runs start-to-finish against
/// the engine it acquired.
///
/// Epochs are observability: each Swap() bumps the epoch, so tests and
/// operators can tell which generation answered ("engine epoch 3"). A
/// mutex-protected shared_ptr (rather than std::atomic<std::shared_ptr>)
/// keeps the implementation portable across the toolchains we build with;
/// the critical section is two refcount operations.
class EngineHandle {
 public:
  explicit EngineHandle(Engine engine)
      : engine_(std::make_shared<Engine>(std::move(engine))) {}

  EngineHandle(const EngineHandle&) = delete;
  EngineHandle& operator=(const EngineHandle&) = delete;

  /// The current engine. Hold the returned shared_ptr for the duration of
  /// the batch: it is what defers retirement of a swapped-out engine until
  /// in-flight work drains.
  std::shared_ptr<Engine> Acquire() const {
    std::lock_guard<std::mutex> lock(mu_);
    return engine_;
  }

  /// Publishes `next` as the serving engine and bumps the epoch. The
  /// previous engine is destroyed once every outstanding Acquire() holder
  /// releases it (possibly inside this call if none are outstanding).
  void Swap(Engine next) {
    auto replacement = std::make_shared<Engine>(std::move(next));
    std::shared_ptr<Engine> retired;
    {
      std::lock_guard<std::mutex> lock(mu_);
      retired = std::move(engine_);
      engine_ = std::move(replacement);
      epoch_.fetch_add(1, std::memory_order_acq_rel);
    }
    // `retired` drops its reference outside the lock: if this is the last
    // reference, the old engine (and its snapshot mapping) unmaps here, not
    // under the handle's mutex.
  }

  /// Number of completed swaps (0 for a never-swapped handle).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<Engine> engine_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace soi::service

#endif  // SOI_SERVICE_HOT_SWAP_H_
