#ifndef SOI_SERVICE_PROTOCOL_H_
#define SOI_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "service/engine.h"
#include "util/status.h"

namespace soi::service {

/// Line-delimited JSON wire protocol for the engine ("soi-service").
///
/// One request per line, one response line per request, in request order.
/// Two envelope versions coexist on the same stream, selected per line by
/// the optional "v" field (default 1); a server answers each line in the
/// shape of the version it was asked in.
///
/// -- v1 (legacy, the shape since PR 4; lines with no "v" or "v":1) -------
///
///   {"op":"typical","seeds":[4],"id":1}
///   {"op":"cascade","seeds":[0,3],"world":2,"id":2}
///   {"op":"spread","seeds":[4],"id":3}
///   {"op":"seed_select","k":5,"method":"tc","id":4}
///   {"op":"reliability","seeds":[4],"threshold":0.5,"id":5}
///   {"op":"update","ops":[{"op":"insert","src":0,"dst":7,"prob":0.2},
///                         {"op":"delete","src":3,"dst":1},
///                         {"op":"prob","src":0,"dst":7,"prob":0.4}],"id":6}
///
/// Optional fields on every request: "id" (integer echoed back, default -1),
/// "timeout_ms" (per-request deadline, 0 = server default). "typical" also
/// takes "local_search" (bool).
///
/// v1 responses: {"id":N,"status":"ok","op":...,<payload>} on success, or
/// {"id":N,"status":"invalid_argument","error":"..."} on failure — status
/// strings are the snake_case of StatusCode. v1 requests always run on the
/// exact tier, so their payloads stay byte-identical across releases.
///
/// -- v2 ("v":2 on the request line) --------------------------------------
///
/// Same ops and required fields as v1, plus two uniform optional fields on
/// every op:
///
///   "accuracy": "exact" (default) | "sketch" | "auto"
///       exact  — answer from the closure cache, always.
///       sketch — demand the bottom-k sketch tier; fails with code
///                FAILED_PRECONDITION when the server has no sketches or
///                the op has no sketch path (only spread and seed_select
///                have one).
///       auto   — exact while headroom exists; degrades to the sketch tier
///                under load or deadline pressure instead of shedding.
///   "max_error": largest acceptable relative error for "auto" (number,
///       default 0 = any). When the sketch tier's 1/sqrt(k-2) bound exceeds
///       it, auto stays exact.
///
///   {"v":2,"op":"spread","seeds":[4],"accuracy":"sketch","id":7}
///   {"v":2,"op":"seed_select","k":5,"accuracy":"auto","max_error":0.2,"id":8}
///
/// v2 success responses carry response metadata after the payload fields:
///
///   {"id":7,"status":"ok","op":"spread","spread":12.25,
///    "tier":"sketch","est_error":0.2672612419,"elapsed_us":42}
///
/// "tier" is the tier that actually answered ("exact" | "sketch"),
/// "est_error" its a-priori relative error bound (0 for exact), and
/// "elapsed_us" the handler wall time. v2 failures are structured,
/// machine-readable codes instead of free-text-only:
///
///   {"id":9,"status":"error","code":"DEADLINE_EXCEEDED","message":"..."}
///
/// with "code" the UPPER_SNAKE of StatusCode (StatusCodeToErrorCode).
///
/// Both versions: "update" requires the server to run a dynamic engine
/// (serve --dynamic); static servers answer it with failed_precondition /
/// FAILED_PRECONDITION. Its ops apply atomically, in order; the response
/// reports applied/affected counts plus the engine's cumulative drift. A
/// malformed line yields an error response (id -1 unless an id could be
/// salvaged, in the v1 shape unless a "v":2 could be salvaged) and the
/// stream keeps serving: one bad client line never kills the connection.
/// v2 fields on a v1 line ("accuracy"/"max_error" without "v":2) are an
/// error naming the fix rather than being silently ignored.

/// A parsed request: wire correlation id, envelope version (decides the
/// response shape), and the engine request.
struct ProtocolRequest {
  int64_t id = -1;
  int version = 1;
  Request request;
};

/// Parses one request line. Unknown "op" values, missing required fields,
/// wrong types, and trailing garbage are all InvalidArgument with a message
/// naming the offending field.
Result<ProtocolRequest> ParseRequestLine(std::string_view line);

/// Zero-allocation variant for the serving hot path: parses `line` into
/// `*out`, reusing whatever storage `*out` already holds (seed vectors,
/// method strings, the payload variant's current alternative). Flat
/// requests in the common shape — no escapes, no duplicate keys, plain
/// integers — are parsed in situ over the connection buffer without a
/// single heap allocation once the slot is warm. Anything unusual
/// (escaped strings, "update" batches, malformed JSON) falls back to
/// ParseRequestLine, so accepted requests and error messages are
/// byte-identical to the allocating parser in every case.
Status ParseRequestLineInto(std::string_view line, ProtocolRequest* out);

/// Appends one response line (terminated with '\n') in the shape of
/// `version` to `*out` — the allocation-free serialization primitive the
/// serving data plane builds per-connection output buffers with. Appending
/// into a warm buffer performs no heap allocation on success paths.
void AppendResponseLine(std::string* out, int64_t id, int version,
                        const Result<Response>& result);

/// Formats one v1 response line (terminated with '\n'). Kept as the
/// two-argument overload so every v1 producer stays byte-identical.
std::string FormatResponseLine(int64_t id, const Result<Response>& result);

/// Formats one response line in the shape of `version` (1 or 2; anything
/// else is treated as 1, the permissive default for salvaged error paths).
std::string FormatResponseLine(int64_t id, int version,
                               const Result<Response>& result);

/// Best-effort recovery of the correlation id from a line that failed to
/// parse, so the client can still match the error to its request. Scans
/// for a quoted "id" KEY — a quote-aware tokenizer, not a substring match,
/// so an "id" embedded inside a string value never counts — tolerating
/// arbitrary whitespace around the ':'. Returns -1 when no id key with an
/// integer value is found.
int64_t SalvageId(std::string_view line);

/// Best-effort recovery of the envelope version from a malformed line (same
/// key scanner as SalvageId), so a v2 client gets its parse errors in the
/// v2 error shape. Returns 2 only for a "v" key with integer value 2;
/// everything else (absent, string-embedded, non-integer) is 1.
int SalvageVersion(std::string_view line);

/// snake_case wire name of a status code ("ok", "invalid_argument",
/// "deadline_exceeded", ...) — v1 "status" values.
const char* StatusCodeToWireString(StatusCode code);

/// UPPER_SNAKE machine-readable error code ("INVALID_ARGUMENT",
/// "DEADLINE_EXCEEDED", ...) — v2 "code" values.
const char* StatusCodeToErrorCode(StatusCode code);

}  // namespace soi::service

#endif  // SOI_SERVICE_PROTOCOL_H_
