#ifndef SOI_SERVICE_PROTOCOL_H_
#define SOI_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "service/engine.h"
#include "util/status.h"

namespace soi::service {

/// Line-delimited JSON wire protocol for the engine ("soi-service-v1").
///
/// One request per line, one response line per request, in request order:
///
///   {"op":"typical","seeds":[4],"id":1}
///   {"op":"cascade","seeds":[0,3],"world":2,"id":2}
///   {"op":"spread","seeds":[4],"id":3}
///   {"op":"seed_select","k":5,"method":"tc","id":4}
///   {"op":"reliability","seeds":[4],"threshold":0.5,"id":5}
///   {"op":"update","ops":[{"op":"insert","src":0,"dst":7,"prob":0.2},
///                         {"op":"delete","src":3,"dst":1},
///                         {"op":"prob","src":0,"dst":7,"prob":0.4}],"id":6}
///
/// "update" requires the server to run a dynamic engine (serve --dynamic);
/// static servers answer it with status "failed_precondition". Its ops
/// apply atomically, in order; the response reports applied/affected
/// counts plus the engine's cumulative drift.
///
/// Optional fields on every request: "id" (integer echoed back, default -1),
/// "timeout_ms" (per-request deadline, 0 = server default). "typical" also
/// takes "local_search" (bool).
///
/// Responses: {"id":N,"status":"ok","op":...,<payload>} on success, or
/// {"id":N,"status":"invalid_argument","error":"..."} on failure — status
/// strings are the snake_case of StatusCode. A malformed line yields an
/// error response (id -1 unless an id could be salvaged) and the stream
/// keeps serving: one bad client line never kills the connection.

/// A parsed request: wire correlation id + the engine request.
struct ProtocolRequest {
  int64_t id = -1;
  Request request;
};

/// Parses one request line. Unknown "op" values, missing required fields,
/// wrong types, and trailing garbage are all InvalidArgument with a message
/// naming the offending field.
Result<ProtocolRequest> ParseRequestLine(std::string_view line);

/// Formats one response line (terminated with '\n').
std::string FormatResponseLine(int64_t id, const Result<Response>& result);

/// snake_case wire name of a status code ("ok", "invalid_argument",
/// "deadline_exceeded", ...).
const char* StatusCodeToWireString(StatusCode code);

}  // namespace soi::service

#endif  // SOI_SERVICE_PROTOCOL_H_
