#ifndef SOI_SERVICE_EVENT_LOOP_H_
#define SOI_SERVICE_EVENT_LOOP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "service/engine.h"
#include "service/hot_swap.h"
#include "util/status.h"

namespace soi::service {

/// Configuration for one EventLoop instance. The caller (server.cc)
/// resolves user-facing ServeOptions into these concrete knobs — in
/// particular batch_max arrives already clamped against the engine's
/// admission limit.
struct EventLoopOptions {
  /// Flush threshold: a cross-connection batch is executed once this many
  /// requests are pending. Must be >= 1.
  uint32_t batch_max = 1;
  /// Adaptive batching window in microseconds. 0 = flush as soon as the
  /// epoll ready set drains (no event is ready right now); > 0 = keep
  /// accumulating requests across connections for up to this long after
  /// the first pending request, then flush. Granularity is the epoll_wait
  /// millisecond clock, so sub-millisecond windows behave like "drain plus
  /// up to 1ms".
  uint32_t batch_window_us = 0;
  /// Longest accepted request line. A longer line yields an in-order
  /// invalid_argument error response and the parser resynchronizes at the
  /// next newline — the buffer never grows unboundedly on a newline-less
  /// stream.
  size_t max_line_bytes = 1 << 20;
  /// Write backpressure threshold: once a connection's un-sent output
  /// exceeds this, the loop stops reading from it (drops EPOLLIN interest)
  /// until the client drains its socket. Bounds per-connection memory
  /// against slow readers.
  size_t max_output_bytes = 4u << 20;
  /// Serve-loop poll hook (reload checks etc.); invoked on every wakeup.
  /// Borrowed pointer — may be null, must outlive the loop when set.
  const std::function<void()>* poll = nullptr;
};

/// Single-threaded epoll event loop multiplexing N protocol connections
/// over one engine — the serving data plane.
///
/// Architecture (DESIGN.md §16):
///   - per-connection non-blocking read/write buffers with in-situ line
///     parsing (ParseRequestLineInto over the connection buffer, reusing a
///     per-slot ProtocolRequest — zero allocations once warm);
///   - cross-connection batching: requests pending on ALL connections are
///     gathered (connection registration order, then per-connection
///     arrival order — deterministic) into chunks of <= batch_max and
///     executed via Engine::RunBatchInto; responses are serialized into
///     per-connection output buffers in per-connection request order;
///   - write backpressure via EPOLLOUT re-arming and max_output_bytes;
///   - hot swap: the engine is Acquire()d from the EngineHandle once per
///     flush, so EngineHandle::Swap() retires the old engine only after
///     in-flight chunks complete.
///
/// One loop instance is single-threaded and not thread-safe; parallelism
/// inside a batch comes from the engine's deterministic runtime.
class EventLoop {
 public:
  /// Exactly one of `engine` / `handle` must be non-null (a fixed engine,
  /// or a hot-swappable handle acquired per flush). Both are borrowed.
  EventLoop(Engine* engine, const EngineHandle* handle,
            const EventLoopOptions& options);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Serves one client over a pair of descriptors until EOF on `in_fd` —
  /// the single-connection degenerate case of the same loop (ServeStream).
  /// When either descriptor cannot be epoll-registered (regular files:
  /// `serve --stdin < requests.txt`), a blocking driver runs the identical
  /// parse/batch/flush machinery instead. The descriptors are borrowed:
  /// never closed, and their O_NONBLOCK state is restored on return.
  Status ServePair(int in_fd, int out_fd);

  /// Serves a listening socket: accepts up to `max_connections` clients
  /// (0 = unlimited) and multiplexes them all. Takes ownership of
  /// `listen_fd`. Returns once the listener is exhausted and every
  /// accepted connection has drained.
  Status ServeListener(int listen_fd, uint32_t max_connections);

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace soi::service

#endif  // SOI_SERVICE_EVENT_LOOP_H_
