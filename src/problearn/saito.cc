#include "problearn/saito.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace soi {

Result<SaitoResult> LearnSaito(const ProbGraph& social_graph,
                               const ActionLog& log,
                               const SaitoOptions& options) {
  if (log.num_users() != social_graph.num_nodes()) {
    return Status::InvalidArgument("log user space != graph node space");
  }
  if (!(options.init_prob > 0.0 && options.init_prob <= 1.0)) {
    return Status::InvalidArgument("init_prob must be in (0,1]");
  }
  const NodeId n = social_graph.num_nodes();
  const EdgeId m = social_graph.num_edges();

  // Scratch for per-item activation steps (stamped).
  constexpr uint32_t kInactive = ~uint32_t{0};
  std::vector<uint32_t> step_of(n, 0);
  std::vector<uint32_t> stamp(n, 0);
  auto step_or_inactive = [&](NodeId v, uint32_t item_stamp) {
    return stamp[v] == item_stamp ? step_of[v] : kInactive;
  };

  // Positive events, flattened: event k owns edge ids
  // event_edges[event_offsets[k] .. event_offsets[k+1]).
  std::vector<size_t> event_offsets{0};
  std::vector<EdgeId> event_edges;
  std::vector<uint64_t> pos_count(m, 0);
  std::vector<uint64_t> neg_count(m, 0);

  for (uint32_t item = 0; item < log.num_items(); ++item) {
    const auto acts = log.ItemActions(item);
    const uint32_t item_stamp = item + 1;
    for (const Action& a : acts) {
      stamp[a.user] = item_stamp;
      step_of[a.user] = a.step;
    }
    // Positive events: v activated at step t+1 with parents active at t.
    for (const Action& a : acts) {
      if (a.step == 0) continue;  // initiators are not explained by edges
      const NodeId v = a.user;
      const size_t before = event_edges.size();
      for (NodeId u : social_graph.InNeighbors(v)) {
        if (step_or_inactive(u, item_stamp) != a.step - 1) continue;
        const auto edge = social_graph.FindEdge(u, v);
        SOI_CHECK(edge.ok());
        event_edges.push_back(edge.value());
        ++pos_count[edge.value()];
      }
      if (event_edges.size() == before) continue;  // unexplained activation
      event_offsets.push_back(event_edges.size());
    }
    // Negative occurrences: u active at t, out-neighbor v provably not
    // activated by u (inactive forever, or activated later than t+1).
    for (const Action& a : acts) {
      const NodeId u = a.user;
      const EdgeId begin = social_graph.OutBegin(u);
      const auto nbrs = social_graph.OutNeighbors(u);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const uint32_t tv = step_or_inactive(nbrs[i], item_stamp);
        if (tv == kInactive || tv > a.step + 1) {
          ++neg_count[begin + static_cast<EdgeId>(i)];
        }
      }
    }
  }

  // Learnable edges: at least one positive occurrence (otherwise MLE is 0).
  std::vector<double> p(m, 0.0);
  for (EdgeId e = 0; e < m; ++e) {
    if (pos_count[e] > 0) p[e] = options.init_prob;
  }

  // EM iterations.
  const size_t num_events = event_offsets.size() - 1;
  std::vector<double> contrib(m, 0.0);
  uint32_t iter = 0;
  double delta = 0.0;
  for (; iter < options.max_iterations; ++iter) {
    std::fill(contrib.begin(), contrib.end(), 0.0);
    for (size_t k = 0; k < num_events; ++k) {
      double miss = 1.0;
      for (size_t idx = event_offsets[k]; idx < event_offsets[k + 1]; ++idx) {
        miss *= 1.0 - p[event_edges[idx]];
      }
      const double pv = std::max(1.0 - miss, 1e-12);
      for (size_t idx = event_offsets[k]; idx < event_offsets[k + 1]; ++idx) {
        const EdgeId e = event_edges[idx];
        contrib[e] += p[e] / pv;
      }
    }
    delta = 0.0;
    for (EdgeId e = 0; e < m; ++e) {
      if (pos_count[e] == 0) continue;
      const double denom =
          static_cast<double>(pos_count[e] + neg_count[e]);
      const double updated = std::clamp(contrib[e] / denom, 1e-9, 1.0);
      delta = std::max(delta, std::abs(updated - p[e]));
      p[e] = updated;
    }
    if (delta < options.tolerance) {
      ++iter;
      break;
    }
  }

  ProbGraphBuilder builder(n);
  for (EdgeId e = 0; e < m; ++e) {
    if (pos_count[e] == 0 || p[e] < options.min_prob) continue;
    SOI_RETURN_IF_ERROR(builder.AddEdge(social_graph.EdgeSource(e),
                                        social_graph.EdgeTarget(e), p[e]));
  }
  SaitoResult result{.graph = ProbGraph(), .iterations = iter,
                     .final_delta = delta};
  SOI_ASSIGN_OR_RETURN(result.graph, builder.Build());
  return result;
}

}  // namespace soi
