#include "problearn/goyal.h"

#include <algorithm>
#include <vector>

namespace soi {

Result<ProbGraph> LearnGoyal(const ProbGraph& social_graph,
                             const ActionLog& log,
                             const GoyalOptions& options) {
  if (log.num_users() != social_graph.num_nodes()) {
    return Status::InvalidArgument("log user space != graph node space");
  }
  const NodeId n = social_graph.num_nodes();
  const bool partial =
      options.credit_model == GoyalOptions::CreditModel::kPartialCredits;

  std::vector<uint64_t> actions_of(n, 0);                    // A_u
  std::vector<double> credit(social_graph.num_edges(), 0.0);  // A_{u2v}

  // Per-item scratch: activation step of each user in the current item,
  // stamped to avoid O(n) resets.
  constexpr uint32_t kInactive = ~uint32_t{0};
  std::vector<uint32_t> step_of(n, 0);
  std::vector<uint32_t> stamp(n, 0);
  auto step_or_inactive = [&](NodeId v, uint32_t item_stamp) {
    return stamp[v] == item_stamp ? step_of[v] : kInactive;
  };

  std::vector<EdgeId> influencer_edges;
  for (uint32_t item = 0; item < log.num_items(); ++item) {
    const auto acts = log.ItemActions(item);
    const uint32_t item_stamp = item + 1;
    for (const Action& a : acts) {
      stamp[a.user] = item_stamp;
      step_of[a.user] = a.step;
      ++actions_of[a.user];
    }
    // For each activated v, credit the in-neighbors that acted earlier:
    // full credit each (Bernoulli) or 1/j split (partial credits).
    for (const Action& a : acts) {
      const NodeId v = a.user;
      influencer_edges.clear();
      for (NodeId u : social_graph.InNeighbors(v)) {
        const uint32_t tu = step_or_inactive(u, item_stamp);
        if (tu == kInactive || tu >= a.step) continue;
        const auto edge = social_graph.FindEdge(u, v);
        SOI_CHECK(edge.ok());
        influencer_edges.push_back(edge.value());
      }
      if (influencer_edges.empty()) continue;
      const double share =
          partial ? 1.0 / static_cast<double>(influencer_edges.size()) : 1.0;
      for (EdgeId e : influencer_edges) credit[e] += share;
    }
  }

  ProbGraphBuilder builder(n);
  for (EdgeId e = 0; e < social_graph.num_edges(); ++e) {
    const NodeId u = social_graph.EdgeSource(e);
    if (actions_of[u] == 0 || credit[e] <= 0.0) continue;
    const double p = std::min(
        options.max_prob, credit[e] / static_cast<double>(actions_of[u]));
    if (p < options.min_prob) continue;
    SOI_RETURN_IF_ERROR(builder.AddEdge(u, social_graph.EdgeTarget(e), p));
  }
  return builder.Build();
}

}  // namespace soi
