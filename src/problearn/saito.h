#ifndef SOI_PROBLEARN_SAITO_H_
#define SOI_PROBLEARN_SAITO_H_

#include "graph/prob_graph.h"
#include "problearn/action_log.h"
#include "util/status.h"

namespace soi {

/// Saito, Nakano, Kimura (KES 2008): maximum-likelihood estimation of IC
/// probabilities from propagation episodes via Expectation Maximization,
/// used by the paper for the -S datasets.
///
/// For each episode (item) and each user v activated at step t+1, the
/// likelihood of the observation is P_v = 1 - prod_{u in B_v} (1 - p_{u,v})
/// over the parents B_v active at step t. The EM update is
///
///   p_{u,v} <- ( sum_{episodes in A+} p_{u,v} / P_v ) / (|A+| + |A-|)
///
/// where A+ are episodes where u was active at t and v activated at t+1, and
/// A- episodes where u's influence attempt on v demonstrably failed (u
/// active at step t but v not activated at t+1 from it).
struct SaitoOptions {
  uint32_t max_iterations = 100;
  /// Stop when the max absolute parameter change drops below this.
  double tolerance = 1e-6;
  /// Initial value of every learnable probability.
  double init_prob = 0.2;
  /// Arcs whose final estimate falls below this are dropped.
  double min_prob = 1e-4;
};

struct SaitoResult {
  ProbGraph graph;
  uint32_t iterations = 0;
  /// Max absolute parameter change at the last iteration.
  double final_delta = 0.0;
};

/// Learns probabilities for the arcs of `social_graph` from `log`.
/// Arcs with no positive occurrence are dropped (their MLE is 0).
Result<SaitoResult> LearnSaito(const ProbGraph& social_graph,
                               const ActionLog& log,
                               const SaitoOptions& options = {});

}  // namespace soi

#endif  // SOI_PROBLEARN_SAITO_H_
