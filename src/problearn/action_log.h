#ifndef SOI_PROBLEARN_ACTION_LOG_H_
#define SOI_PROBLEARN_ACTION_LOG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/prob_graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace soi {

/// One log entry: `user` performed the action on `item` at discrete time
/// `step` (the paper's Digg votes / Flixster ratings / Twitter reshares).
/// Steps are cascade-relative: initiators act at step 0.
struct Action {
  uint32_t item = 0;
  NodeId user = 0;
  uint32_t step = 0;
};

/// A propagation log: actions grouped by item, each item's actions sorted by
/// (step, user). Each user acts at most once per item.
class ActionLog {
 public:
  /// Validates and indexes a raw action list.
  static Result<ActionLog> FromActions(std::vector<Action> actions,
                                       uint32_t num_items, NodeId num_users);

  uint32_t num_items() const { return num_items_; }
  NodeId num_users() const { return num_users_; }
  size_t num_actions() const { return actions_.size(); }

  /// Actions of one item, sorted by (step, user).
  std::span<const Action> ItemActions(uint32_t item) const {
    SOI_DCHECK(item < num_items_);
    return {actions_.data() + offsets_[item],
            actions_.data() + offsets_[item + 1]};
  }

 private:
  uint32_t num_items_ = 0;
  NodeId num_users_ = 0;
  std::vector<Action> actions_;     // grouped by item
  std::vector<size_t> offsets_;     // item -> range in actions_
};

/// Options for simulating a propagation log from a hidden ground-truth IC
/// model (our stand-in for the crawled Digg/Flixster/Twitter logs, see
/// DESIGN.md §2).
struct LogSimulationOptions {
  uint32_t num_items = 1000;
  /// Initiators per item, drawn uniformly at random.
  uint32_t seeds_per_item = 1;
  /// Drop items whose cascade stayed below this size (tiny cascades carry
  /// almost no learning signal; 1 keeps everything).
  uint32_t min_cascade_size = 1;
};

/// Simulates `num_items` independent IC cascades on `ground_truth` and
/// records every activation as an action.
Result<ActionLog> SimulateActionLog(const ProbGraph& ground_truth,
                                    const LogSimulationOptions& options,
                                    Rng* rng);

}  // namespace soi

#endif  // SOI_PROBLEARN_ACTION_LOG_H_
