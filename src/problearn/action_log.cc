#include "problearn/action_log.h"

#include <algorithm>

#include "cascade/simulate.h"

namespace soi {

Result<ActionLog> ActionLog::FromActions(std::vector<Action> actions,
                                         uint32_t num_items, NodeId num_users) {
  for (const Action& a : actions) {
    if (a.item >= num_items) return Status::OutOfRange("action item id");
    if (a.user >= num_users) return Status::OutOfRange("action user id");
  }
  std::sort(actions.begin(), actions.end(),
            [](const Action& a, const Action& b) {
              if (a.item != b.item) return a.item < b.item;
              if (a.step != b.step) return a.step < b.step;
              return a.user < b.user;
            });
  // A user acts at most once per item.
  for (size_t i = 1; i < actions.size(); ++i) {
    if (actions[i].item == actions[i - 1].item &&
        actions[i].user == actions[i - 1].user) {
      return Status::InvalidArgument("duplicate (item, user) action");
    }
  }

  ActionLog log;
  log.num_items_ = num_items;
  log.num_users_ = num_users;
  log.offsets_.assign(num_items + 1, 0);
  for (const Action& a : actions) ++log.offsets_[a.item + 1];
  for (uint32_t i = 0; i < num_items; ++i) {
    log.offsets_[i + 1] += log.offsets_[i];
  }
  log.actions_ = std::move(actions);
  return log;
}

Result<ActionLog> SimulateActionLog(const ProbGraph& ground_truth,
                                    const LogSimulationOptions& options,
                                    Rng* rng) {
  if (ground_truth.num_nodes() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  if (options.num_items == 0 || options.seeds_per_item == 0) {
    return Status::InvalidArgument("num_items and seeds_per_item must be >= 1");
  }
  std::vector<Action> actions;
  std::vector<NodeId> seeds;
  for (uint32_t item = 0; item < options.num_items; ++item) {
    seeds.clear();
    while (seeds.size() < options.seeds_per_item) {
      const NodeId s =
          static_cast<NodeId>(rng->NextBounded(ground_truth.num_nodes()));
      if (std::find(seeds.begin(), seeds.end(), s) == seeds.end()) {
        seeds.push_back(s);
      }
    }
    const std::vector<Activation> events =
        SimulateCascadeWithTimes(ground_truth, seeds, rng);
    if (events.size() < options.min_cascade_size) continue;
    for (const Activation& a : events) {
      actions.push_back({item, a.node, a.step});
    }
  }
  return ActionLog::FromActions(std::move(actions), options.num_items,
                                ground_truth.num_nodes());
}

}  // namespace soi
