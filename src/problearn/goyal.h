#ifndef SOI_PROBLEARN_GOYAL_H_
#define SOI_PROBLEARN_GOYAL_H_

#include "graph/prob_graph.h"
#include "problearn/action_log.h"
#include "util/status.h"

namespace soi {

/// Goyal et al. (WSDM 2010) frequentist learner, the simplest "Bernoulli"
/// model the paper uses for the -G datasets: for a social arc (u, v),
///
///   p(u, v) = A_{u2v} / A_u
///
/// where A_u is the number of items u acted on and A_{u2v} the number of
/// items where v acted *after* u did.
struct GoyalOptions {
  /// Credit model for an action of v preceded by several active neighbors.
  enum class CreditModel {
    /// Bernoulli: every earlier-acting in-neighbor gets full credit 1
    /// (the paper's choice; systematically optimistic, see Figure 3).
    kBernoulli,
    /// Partial credits (Goyal et al. §3): the credit for v's action is
    /// split equally among the j in-neighbors that acted before v, so each
    /// gets 1/j. Produces smaller, less-correlated estimates.
    kPartialCredits,
  };
  CreditModel credit_model = CreditModel::kBernoulli;
  /// Arcs whose estimate falls below this are dropped from the output graph
  /// (a zero/negligible contagion probability is equivalent to no arc under
  /// the IC model).
  double min_prob = 1e-4;
  /// Cap estimates at this value (an estimate of exactly 1 is usually an
  /// artifact of tiny counts).
  double max_prob = 1.0;
};

/// Learns probabilities for the arcs of `social_graph` from `log`.
/// Returns a graph over the same node set containing only the arcs with a
/// learnable, above-threshold probability.
Result<ProbGraph> LearnGoyal(const ProbGraph& social_graph,
                             const ActionLog& log,
                             const GoyalOptions& options = {});

}  // namespace soi

#endif  // SOI_PROBLEARN_GOYAL_H_
