#include "reliability/reliability.h"

#include <algorithm>

#include "cascade/world.h"
#include "obs/metrics.h"
#include "util/bitvector.h"

namespace soi {

namespace {

Status CheckSeeds(NodeId num_nodes, std::span<const NodeId> seeds) {
  return ValidateSeedSet(seeds, num_nodes);
}

}  // namespace

Result<double> EstimateReliability(const ProbGraph& graph, NodeId source,
                                   NodeId target, uint32_t num_samples,
                                   Rng* rng) {
  const NodeId seeds[1] = {source};
  SOI_RETURN_IF_ERROR(CheckSeeds(graph.num_nodes(), seeds));
  if (target >= graph.num_nodes()) {
    return Status::OutOfRange("target out of range");
  }
  if (num_samples == 0) {
    return Status::InvalidArgument("num_samples must be >= 1");
  }
  SOI_OBS_SPAN("reliability/estimate");
  SOI_OBS_COUNTER_ADD("reliability/samples", num_samples);
  uint32_t hits = 0;
  for (uint32_t i = 0; i < num_samples; ++i) {
    // BFS with on-the-fly coin flips and early exit at the target: cheaper
    // than materializing the world when the target is close.
    BitVector active(graph.num_nodes());
    std::vector<NodeId> frontier{source};
    active.Set(source);
    bool reached = source == target;
    for (size_t read = 0; read < frontier.size() && !reached; ++read) {
      const NodeId u = frontier[read];
      const auto nbrs = graph.OutNeighbors(u);
      const auto probs = graph.OutProbs(u);
      for (size_t j = 0; j < nbrs.size(); ++j) {
        if (active.Test(nbrs[j]) || !rng->NextBernoulli(probs[j])) continue;
        if (nbrs[j] == target) {
          reached = true;
          break;
        }
        active.Set(nbrs[j]);
        frontier.push_back(nbrs[j]);
      }
    }
    hits += reached;
  }
  return static_cast<double>(hits) / num_samples;
}

Result<std::vector<double>> ReachabilityProbabilities(
    const CascadeIndex& index, std::span<const NodeId> seeds) {
  SOI_RETURN_IF_ERROR(CheckSeeds(index.num_nodes(), seeds));
  SOI_OBS_SPAN("reliability/reachability_probabilities");
  std::vector<uint32_t> counts(index.num_nodes(), 0);
  CascadeIndex::Workspace ws;
  for (uint32_t i = 0; i < index.num_worlds(); ++i) {
    SOI_ASSIGN_OR_RETURN(const std::vector<NodeId> cascade,
                         index.Cascade(seeds, i, &ws));
    for (NodeId v : cascade) ++counts[v];
  }
  std::vector<double> probs(index.num_nodes());
  for (NodeId v = 0; v < index.num_nodes(); ++v) {
    probs[v] = static_cast<double>(counts[v]) / index.num_worlds();
  }
  return probs;
}

Result<std::vector<NodeId>> ReliabilitySearch(const CascadeIndex& index,
                                              std::span<const NodeId> seeds,
                                              double threshold) {
  if (!(threshold >= 0.0 && threshold <= 1.0)) {
    return Status::InvalidArgument("threshold must be in [0, 1]");
  }
  SOI_ASSIGN_OR_RETURN(const std::vector<double> probs,
                       ReachabilityProbabilities(index, seeds));
  std::vector<NodeId> out;
  for (NodeId v = 0; v < index.num_nodes(); ++v) {
    if (probs[v] >= threshold) out.push_back(v);
  }
  return out;
}

Result<double> EstimateDistanceConstrainedReliability(const ProbGraph& graph,
                                                      NodeId source,
                                                      NodeId target,
                                                      uint32_t max_hops,
                                                      uint32_t num_samples,
                                                      Rng* rng) {
  const NodeId seeds[1] = {source};
  SOI_RETURN_IF_ERROR(CheckSeeds(graph.num_nodes(), seeds));
  if (target >= graph.num_nodes()) {
    return Status::OutOfRange("target out of range");
  }
  if (num_samples == 0) {
    return Status::InvalidArgument("num_samples must be >= 1");
  }
  SOI_OBS_SPAN("reliability/estimate_distance_constrained");
  SOI_OBS_COUNTER_ADD("reliability/samples", num_samples);
  uint32_t hits = 0;
  std::vector<NodeId> frontier, next;
  for (uint32_t i = 0; i < num_samples; ++i) {
    BitVector active(graph.num_nodes());
    frontier.assign(1, source);
    active.Set(source);
    bool reached = source == target;
    for (uint32_t hop = 0; hop < max_hops && !reached && !frontier.empty();
         ++hop) {
      next.clear();
      for (NodeId u : frontier) {
        const auto nbrs = graph.OutNeighbors(u);
        const auto probs = graph.OutProbs(u);
        for (size_t j = 0; j < nbrs.size(); ++j) {
          if (active.Test(nbrs[j]) || !rng->NextBernoulli(probs[j])) continue;
          active.Set(nbrs[j]);
          if (nbrs[j] == target) {
            reached = true;
            break;
          }
          next.push_back(nbrs[j]);
        }
        if (reached) break;
      }
      frontier.swap(next);
    }
    hits += reached;
  }
  return static_cast<double>(hits) / num_samples;
}

Result<double> ExpectedReachableSize(const CascadeIndex& index,
                                     std::span<const NodeId> seeds) {
  SOI_RETURN_IF_ERROR(CheckSeeds(index.num_nodes(), seeds));
  CascadeIndex::Workspace ws;
  uint64_t total = 0;
  for (uint32_t i = 0; i < index.num_worlds(); ++i) {
    SOI_ASSIGN_OR_RETURN(const uint64_t size, index.CascadeSize(seeds, i, &ws));
    total += size;
  }
  return static_cast<double>(total) / index.num_worlds();
}

}  // namespace soi
