#ifndef SOI_RELIABILITY_RELIABILITY_H_
#define SOI_RELIABILITY_RELIABILITY_H_

#include <span>
#include <vector>

#include "graph/prob_graph.h"
#include "index/cascade_index.h"
#include "util/rng.h"
#include "util/status.h"

namespace soi {

/// Classical reliability queries on uncertain graphs (paper §2.1 and the
/// related-work line of Jin et al. / Khan et al. / Zhu et al.): the typical
/// cascade is one member of this query family, and the cascade index answers
/// the others essentially for free.

/// Monte-Carlo s-t reliability: the probability that `target` is reachable
/// from `source`, estimated over `num_samples` sampled worlds. #P-hard to
/// compute exactly (Valiant 1979); cascade/exact.h has the exponential
/// oracle for tiny graphs.
Result<double> EstimateReliability(const ProbGraph& graph, NodeId source,
                                   NodeId target, uint32_t num_samples,
                                   Rng* rng);

/// Per-node reachability probabilities from a seed set, estimated on the
/// sampled worlds of a prebuilt index: result[v] = fraction of worlds in
/// which v is reachable from the seeds.
Result<std::vector<double>> ReachabilityProbabilities(
    const CascadeIndex& index, std::span<const NodeId> seeds);

/// Reliability search (Khan, Bonchi, Gionis, Gullo; EDBT 2014): all nodes
/// reachable from the seed set with probability >= threshold, sorted by node
/// id. Seeds themselves are always reported (probability 1).
Result<std::vector<NodeId>> ReliabilitySearch(const CascadeIndex& index,
                                              std::span<const NodeId> seeds,
                                              double threshold);

/// Distance-constrained reachability (Jin et al., PVLDB 2011): probability
/// that `target` lies within `max_hops` hops of `source` in a random world.
/// Estimated by direct sampling (the condensation index intentionally
/// discards distances, so this query does not use it).
Result<double> EstimateDistanceConstrainedReliability(const ProbGraph& graph,
                                                      NodeId source,
                                                      NodeId target,
                                                      uint32_t max_hops,
                                                      uint32_t num_samples,
                                                      Rng* rng);

/// Expected reachable-set size from a seed set on the index's worlds — the
/// expected spread, exposed under its reliability-literature name.
Result<double> ExpectedReachableSize(const CascadeIndex& index,
                                     std::span<const NodeId> seeds);

}  // namespace soi

#endif  // SOI_RELIABILITY_RELIABILITY_H_
