#ifndef SOI_SOI_H_
#define SOI_SOI_H_

/// Umbrella header: the library's public API in one include.
///
///   #include "soi.h"
///
/// Fine-grained headers remain available (and are preferred inside the
/// library itself; see the include-what-you-use convention in the sources).

#include "cascade/exact.h"          // exact #P oracles for tiny graphs
#include "cascade/simulate.h"       // direct IC simulation
#include "cascade/threshold.h"      // Linear Threshold model
#include "cascade/world.h"          // possible-world sampling
#include "core/ranking.h"           // influencer reliability ranking
#include "core/stability.h"         // seed-set stability (Figure 8)
#include "core/time_bounded.h"      // horizon-bounded spheres
#include "core/typical_cascade.h"   // spheres of influence (Algorithm 2)
#include "gen/datasets.h"           // the 12-configuration dataset registry
#include "gen/generators.h"         // synthetic graph generators
#include "graph/graph_io.h"         // edge-list I/O
#include "graph/graph_stats.h"      // topology diagnostics
#include "graph/prob_assign.h"      // WC / fixed / trivalency / ...
#include "graph/prob_graph.h"       // the probabilistic graph
#include "graph/sparsify.h"         // influence-network sparsification
#include "immunize/vaccination.h"   // data-driven vaccination
#include "index/cascade_index.h"    // the cascade index (Algorithm 1)
#include "index/index_io.h"         // index persistence
#include "infmax/baselines.h"       // degree / random seed selection
#include "infmax/evaluate.h"        // independent spread evaluation
#include "infmax/greedy_std.h"      // InfMax_std (fixed-world and MC)
#include "infmax/infmax_tc.h"       // InfMax_TC (Algorithm 3)
#include "infmax/rrset.h"           // RR-set (TIM-style) baseline
#include "infmax/sketch_oracle.h"   // bottom-k reachability sketches
#include "infmax/spread_oracle.h"   // exact per-world spread oracle
#include "infmax/weighted_cover.h"  // weighted / budgeted cover (§8)
#include "jaccard/jaccard.h"        // Jaccard distance
#include "jaccard/median.h"         // Jaccard median solvers
#include "problearn/action_log.h"   // propagation logs
#include "problearn/goyal.h"        // frequentist learner
#include "problearn/saito.h"        // EM learner
#include "reliability/reliability.h"  // reliability queries
#include "runtime/parallel_for.h"   // deterministic parallel loops
#include "runtime/thread_pool.h"    // shared worker pool
#include "service/engine.h"         // query service facade
#include "service/hot_swap.h"       // atomic engine hot-swap handle
#include "service/protocol.h"       // line-JSON wire protocol
#include "service/server.h"         // stdio / TCP serve loops
#include "snapshot/reader.h"        // mmap'd soi-snap-v1 loading
#include "snapshot/writer.h"        // soi-snap-v1 creation
#include "util/rng.h"               // deterministic PRNG
#include "util/status.h"            // Status / Result

#endif  // SOI_SOI_H_
