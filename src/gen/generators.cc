#include "gen/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>
#include <vector>

namespace soi {

namespace {

constexpr double kPlaceholderProb = 0.5;

uint64_t PairKey(NodeId u, NodeId v, NodeId n) {
  return static_cast<uint64_t>(u) * n + v;
}

// Lazily iterates the index space [0, num_pairs) including each index with
// probability p, using geometric skips (O(expected hits) time). Calls
// fn(index) for each hit.
template <typename Fn>
void SkipSample(uint64_t num_pairs, double p, Rng* rng, Fn&& fn) {
  if (p <= 0.0) return;
  if (p >= 1.0) {
    for (uint64_t i = 0; i < num_pairs; ++i) fn(i);
    return;
  }
  const double log1mp = std::log1p(-p);
  double i = -1.0;
  while (true) {
    const double u = 1.0 - rng->NextDouble();  // in (0, 1]
    i += 1.0 + std::floor(std::log(u) / log1mp);
    if (i >= static_cast<double>(num_pairs)) break;
    fn(static_cast<uint64_t>(i));
  }
}

}  // namespace

Result<ProbGraph> GenerateErdosRenyi(NodeId n, uint64_t m, bool undirected,
                                     Rng* rng) {
  if (n < 2) return Status::InvalidArgument("ErdosRenyi: need n >= 2");
  const uint64_t max_pairs = static_cast<uint64_t>(n) * (n - 1) /
                             (undirected ? 2 : 1);
  if (m > max_pairs / 2) {
    return Status::InvalidArgument(
        "ErdosRenyi: m too large for rejection sampling (need m <= "
        "max_pairs/2)");
  }
  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  ProbGraphBuilder builder(n);
  while (seen.size() < m) {
    NodeId u = static_cast<NodeId>(rng->NextBounded(n));
    NodeId v = static_cast<NodeId>(rng->NextBounded(n));
    if (u == v) continue;
    if (undirected && u > v) std::swap(u, v);
    if (!seen.insert(PairKey(u, v, n)).second) continue;
    if (undirected) {
      SOI_RETURN_IF_ERROR(builder.AddUndirectedEdge(u, v, kPlaceholderProb));
    } else {
      SOI_RETURN_IF_ERROR(builder.AddEdge(u, v, kPlaceholderProb));
    }
  }
  return builder.Build();
}

Result<ProbGraph> GenerateBarabasiAlbert(NodeId n, uint32_t edges_per_node,
                                         bool undirected, Rng* rng) {
  if (edges_per_node == 0) {
    return Status::InvalidArgument("BarabasiAlbert: edges_per_node >= 1");
  }
  if (n <= edges_per_node) {
    return Status::InvalidArgument("BarabasiAlbert: need n > edges_per_node");
  }
  // `endpoints` holds one entry per edge endpoint; drawing uniformly from it
  // realizes preferential attachment.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2ull * n * edges_per_node);
  ProbGraphBuilder builder(n);
  builder.keep_max_duplicate(true);

  // Seed clique over the first edges_per_node + 1 nodes.
  const NodeId seed = edges_per_node + 1;
  for (NodeId u = 0; u < seed; ++u) {
    for (NodeId v = u + 1; v < seed; ++v) {
      if (undirected) {
        SOI_RETURN_IF_ERROR(builder.AddUndirectedEdge(u, v, kPlaceholderProb));
      } else {
        SOI_RETURN_IF_ERROR(builder.AddEdge(u, v, kPlaceholderProb));
      }
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::vector<NodeId> targets;
  for (NodeId u = seed; u < n; ++u) {
    targets.clear();
    while (targets.size() < edges_per_node) {
      const NodeId t = endpoints[rng->NextBounded(endpoints.size())];
      if (t == u) continue;
      if (std::find(targets.begin(), targets.end(), t) != targets.end()) {
        continue;
      }
      targets.push_back(t);
    }
    for (NodeId t : targets) {
      if (undirected) {
        SOI_RETURN_IF_ERROR(builder.AddUndirectedEdge(u, t, kPlaceholderProb));
      } else {
        SOI_RETURN_IF_ERROR(builder.AddEdge(u, t, kPlaceholderProb));
      }
      endpoints.push_back(u);
      endpoints.push_back(t);
    }
  }
  return builder.Build();
}

Result<ProbGraph> GenerateRmat(uint32_t scale, uint64_t m,
                               const RmatOptions& options, Rng* rng) {
  if (scale == 0 || scale > 30) {
    return Status::InvalidArgument("Rmat: scale must be in [1, 30]");
  }
  const double total = options.a + options.b + options.c + options.d;
  if (std::abs(total - 1.0) > 1e-9) {
    return Status::InvalidArgument("Rmat: partition probabilities must sum to 1");
  }
  const NodeId n = NodeId{1} << scale;
  const uint64_t max_pairs = static_cast<uint64_t>(n) * (n - 1);
  if (m > max_pairs / 4) {
    return Status::InvalidArgument("Rmat: m too large for graph scale");
  }

  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  if (options.permute) {
    for (NodeId i = n - 1; i > 0; --i) {
      std::swap(perm[i], perm[rng->NextBounded(i + 1)]);
    }
  }

  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  ProbGraphBuilder builder(n);
  uint64_t attempts = 0;
  const uint64_t max_attempts = 100 * m + 1000;
  while (seen.size() < m) {
    if (++attempts > max_attempts) {
      return Status::Internal("Rmat: rejection sampling did not converge");
    }
    NodeId u = 0, v = 0;
    for (uint32_t level = 0; level < scale; ++level) {
      const double r = rng->NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < options.a) {
        // top-left: no bits set
      } else if (r < options.a + options.b) {
        v |= 1;
      } else if (r < options.a + options.b + options.c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    u = perm[u];
    v = perm[v];
    if (u == v) continue;
    if (options.undirected && u > v) std::swap(u, v);
    if (!seen.insert(PairKey(u, v, n)).second) continue;
    if (options.undirected) {
      SOI_RETURN_IF_ERROR(builder.AddUndirectedEdge(u, v, kPlaceholderProb));
    } else {
      SOI_RETURN_IF_ERROR(builder.AddEdge(u, v, kPlaceholderProb));
    }
  }
  return builder.Build();
}

Result<ProbGraph> GenerateWattsStrogatz(NodeId n, uint32_t k, double beta,
                                        Rng* rng) {
  if (n < 4 || k == 0 || 2ull * k >= n) {
    return Status::InvalidArgument("WattsStrogatz: need n >= 4, 0 < 2k < n");
  }
  if (!(beta >= 0.0 && beta <= 1.0)) {
    return Status::InvalidArgument("WattsStrogatz: beta must be in [0,1]");
  }
  std::unordered_set<uint64_t> seen;
  auto key_of = [n](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return PairKey(a, b, n);
  };
  struct Und {
    NodeId a, b;
  };
  std::vector<Und> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (uint32_t j = 1; j <= k; ++j) {
      const NodeId v = static_cast<NodeId>((u + j) % n);
      if (seen.insert(key_of(u, v)).second) edges.push_back({u, v});
    }
  }
  // Rewire the far endpoint with probability beta.
  for (Und& e : edges) {
    if (!rng->NextBernoulli(beta)) continue;
    for (int tries = 0; tries < 32; ++tries) {
      const NodeId w = static_cast<NodeId>(rng->NextBounded(n));
      if (w == e.a || w == e.b) continue;
      if (seen.count(key_of(e.a, w))) continue;
      seen.erase(key_of(e.a, e.b));
      seen.insert(key_of(e.a, w));
      e.b = w;
      break;
    }
  }
  ProbGraphBuilder builder(n);
  for (const Und& e : edges) {
    SOI_RETURN_IF_ERROR(builder.AddUndirectedEdge(e.a, e.b, kPlaceholderProb));
  }
  return builder.Build();
}

Result<ProbGraph> GeneratePlantedPartition(NodeId n, uint32_t communities,
                                           double p_in, double p_out,
                                           Rng* rng) {
  if (communities == 0 || communities > n) {
    return Status::InvalidArgument("PlantedPartition: bad community count");
  }
  if (!(p_in >= 0.0 && p_in <= 1.0 && p_out >= 0.0 && p_out <= 1.0)) {
    return Status::InvalidArgument("PlantedPartition: probabilities in [0,1]");
  }
  ProbGraphBuilder builder(n);
  auto community_of = [&](NodeId u) { return u % communities; };
  // Sample all ordered pairs via skip sampling over the n*(n-1) off-diagonal
  // index space, choosing p by block. Split into two passes (within / across)
  // so each pass has a uniform probability and skip sampling applies.
  const uint64_t all_pairs = static_cast<uint64_t>(n) * (n - 1);
  auto index_to_pair = [&](uint64_t idx) {
    const NodeId u = static_cast<NodeId>(idx / (n - 1));
    uint64_t rem = idx % (n - 1);
    const NodeId v = static_cast<NodeId>(rem >= u ? rem + 1 : rem);
    return std::make_pair(u, v);
  };
  Status status = Status::OK();
  SkipSample(all_pairs, std::max(p_in, p_out), rng, [&](uint64_t idx) {
    if (!status.ok()) return;
    const auto [u, v] = index_to_pair(idx);
    const bool same = community_of(u) == community_of(v);
    const double p = same ? p_in : p_out;
    const double pmax = std::max(p_in, p_out);
    // Thin the stream down from pmax to the block's probability.
    if (p < pmax && !rng->NextBernoulli(p / pmax)) return;
    status = builder.AddEdge(u, v, kPlaceholderProb);
  });
  SOI_RETURN_IF_ERROR(status);
  return builder.Build();
}

}  // namespace soi
