#ifndef SOI_GEN_GENERATORS_H_
#define SOI_GEN_GENERATORS_H_

#include <cstdint>

#include "graph/prob_graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace soi {

/// Synthetic graph generators standing in for the paper's benchmark networks
/// (SNAP graphs and crawled social networks are not available offline; see
/// DESIGN.md §2). All generators emit topology only — probabilities start at
/// the placeholder 0.5 and are meant to be replaced with the assigners in
/// graph/prob_assign.h or learnt with src/problearn.

/// G(n, m) Erdős–Rényi: m distinct directed arcs sampled uniformly.
/// With undirected=true, m distinct undirected edges are sampled and both
/// arcs are added (num_edges() == 2m).
Result<ProbGraph> GenerateErdosRenyi(NodeId n, uint64_t m, bool undirected,
                                     Rng* rng);

/// Barabási–Albert preferential attachment: each new node attaches to
/// `edges_per_node` existing nodes chosen proportionally to degree.
/// Produces the heavy-tailed degree distribution of citation/social graphs
/// (our NetHEPT / Flixster stand-ins). Undirected semantics: both arcs added.
Result<ProbGraph> GenerateBarabasiAlbert(NodeId n, uint32_t edges_per_node,
                                         bool undirected, Rng* rng);

/// R-MAT (Chakrabarti, Zhan, Faloutsos): recursive-matrix generator that
/// matches SNAP-crawl degree skew and community structure; our Epinions /
/// Slashdot / Digg stand-ins. `scale` gives n = 2^scale; m distinct arcs.
/// Default partition probabilities (0.57, 0.19, 0.19, 0.05) are the
/// conventional social-network parametrization.
struct RmatOptions {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  bool undirected = false;
  /// Random node-id permutation to break the R-MAT id/degree correlation.
  bool permute = true;
};
Result<ProbGraph> GenerateRmat(uint32_t scale, uint64_t m,
                               const RmatOptions& options, Rng* rng);

/// Watts–Strogatz small world: ring lattice with `k` neighbors per side,
/// each arc rewired with probability `beta`. Undirected semantics.
Result<ProbGraph> GenerateWattsStrogatz(NodeId n, uint32_t k, double beta,
                                        Rng* rng);

/// Planted-partition graph: `communities` equal blocks; arc probability
/// p_in within a block, p_out across blocks. Directed.
Result<ProbGraph> GeneratePlantedPartition(NodeId n, uint32_t communities,
                                           double p_in, double p_out,
                                           Rng* rng);

}  // namespace soi

#endif  // SOI_GEN_GENERATORS_H_
