#ifndef SOI_GEN_DATASETS_H_
#define SOI_GEN_DATASETS_H_

#include <string>
#include <string_view>
#include <vector>

#include "graph/prob_graph.h"
#include "util/status.h"

namespace soi {

/// The paper's 12 experimental settings (§6.1-§6.2): six networks × two ways
/// of obtaining influence probabilities each.
///
///   Digg-S / Digg-G         directed,   probabilities learnt (Saito / Goyal)
///   Flixster-S / Flixster-G undirected, learnt
///   Twitter-S / Twitter-G   undirected, learnt
///   NetHEPT-W / NetHEPT-F   undirected, assigned (WC / fixed 0.1)
///   Epinions-W / Epinions-F directed,   assigned
///   Slashdot-W / Slashdot-F directed,   assigned
///
/// The original datasets (SNAP crawls, Digg/Flixster/Twitter logs) are not
/// available offline, so each is replaced by a synthetic network with
/// matching direction and heavy-tailed degree shape; the learnt settings
/// simulate an action log from a hidden ground-truth IC model and re-learn
/// probabilities from it with the paper's actual learners (DESIGN.md §2).
/// Sizes default to roughly paper/10 so single-core sweeps finish in
/// minutes; `scale` shrinks or grows them further.

struct DatasetOptions {
  /// Multiplies node/edge counts of the registry's default sizes.
  double scale = 1.0;
  uint64_t seed = 42;
  /// Log-simulation richness for the learnt datasets.
  double items_per_node = 0.5;
  uint32_t seeds_per_item = 2;
};

/// A ready-to-use experimental dataset.
struct Dataset {
  std::string config;       // "Digg-S"
  std::string network;      // "Digg"
  std::string prob_source;  // "learnt (Saito EM)", "assigned (WC)", ...
  bool directed = true;
  ProbGraph graph;          // final probabilistic graph for the experiments
};

/// All 12 configuration names, in the paper's table order.
std::vector<std::string> AllDatasetConfigs();

/// Builds one configuration ("Digg-S", "NetHEPT-F", ...).
Result<Dataset> MakeDataset(std::string_view config,
                            const DatasetOptions& options = {});

}  // namespace soi

#endif  // SOI_GEN_DATASETS_H_
