#include "gen/datasets.h"

#include <algorithm>
#include <cmath>

#include "gen/generators.h"
#include "graph/prob_assign.h"
#include "problearn/action_log.h"
#include "problearn/goyal.h"
#include "problearn/saito.h"
#include "util/rng.h"

namespace soi {

namespace {

enum class ProbMethod { kSaito, kGoyal, kWeightedCascade, kFixed };
enum class Topology { kRmat, kBarabasiAlbert };

// Default (scale = 1.0) shapes, roughly paper/10 with matched direction.
struct NetworkSpec {
  const char* name;
  Topology topology;
  bool directed;
  NodeId nodes;          // BA node count / RMAT rounded to 2^k
  double edges_per_node; // target m / n (arcs for directed, und. edges else)
  double gt_prob_mean;   // ground-truth exponential mean (learnt settings)
};

constexpr NetworkSpec kNetworks[] = {
    // Learnt-probability networks.
    {"Digg", Topology::kRmat, /*directed=*/true, 4096, 6.0, 0.08},
    {"Flixster", Topology::kBarabasiAlbert, /*directed=*/false, 6000, 6.0,
     0.15},
    {"Twitter", Topology::kRmat, /*directed=*/false, 2048, 10.0, 0.08},
    // Assigned-probability networks.
    {"NetHEPT", Topology::kBarabasiAlbert, /*directed=*/false, 4000, 6.0, 0.0},
    {"Epinions", Topology::kRmat, /*directed=*/true, 8192, 6.0, 0.0},
    {"Slashdot", Topology::kRmat, /*directed=*/true, 8192, 8.0, 0.0},
};

Result<const NetworkSpec*> FindNetwork(std::string_view name) {
  for (const NetworkSpec& spec : kNetworks) {
    if (name == spec.name) return &spec;
  }
  return Status::NotFound("unknown network '" + std::string(name) + "'");
}

Result<ProbMethod> ParseMethod(std::string_view suffix) {
  if (suffix == "S") return ProbMethod::kSaito;
  if (suffix == "G") return ProbMethod::kGoyal;
  if (suffix == "W") return ProbMethod::kWeightedCascade;
  if (suffix == "F") return ProbMethod::kFixed;
  return Status::NotFound("unknown probability method suffix '" +
                          std::string(suffix) + "'");
}

const char* MethodLabel(ProbMethod method) {
  switch (method) {
    case ProbMethod::kSaito:
      return "learnt (Saito EM)";
    case ProbMethod::kGoyal:
      return "learnt (Goyal frequentist)";
    case ProbMethod::kWeightedCascade:
      return "assigned (weighted cascade)";
    case ProbMethod::kFixed:
      return "assigned (fixed 0.1)";
  }
  return "?";
}

Result<ProbGraph> BuildTopology(const NetworkSpec& spec, double scale,
                                Rng* rng) {
  const double n_target = std::max(64.0, spec.nodes * scale);
  switch (spec.topology) {
    case Topology::kRmat: {
      const uint32_t bits = static_cast<uint32_t>(
          std::clamp(std::lround(std::log2(n_target)), 6l, 24l));
      const uint64_t n = uint64_t{1} << bits;
      const uint64_t m = static_cast<uint64_t>(
          std::max(1.0, spec.edges_per_node * static_cast<double>(n) /
                            (spec.directed ? 1.0 : 2.0)));
      RmatOptions options;
      options.undirected = !spec.directed;
      return GenerateRmat(bits, m, options, rng);
    }
    case Topology::kBarabasiAlbert: {
      const NodeId n = static_cast<NodeId>(n_target);
      const uint32_t epn = static_cast<uint32_t>(
          std::max(1.0, spec.edges_per_node / 2.0));
      return GenerateBarabasiAlbert(n, epn, !spec.directed, rng);
    }
  }
  return Status::Internal("unreachable topology");
}

}  // namespace

std::vector<std::string> AllDatasetConfigs() {
  return {"Digg-S",     "Flixster-S", "Twitter-S",  "Digg-G",
          "Flixster-G", "Twitter-G",  "NetHEPT-W",  "Epinions-W",
          "Slashdot-W", "NetHEPT-F",  "Epinions-F", "Slashdot-F"};
}

Result<Dataset> MakeDataset(std::string_view config,
                            const DatasetOptions& options) {
  const size_t dash = config.rfind('-');
  if (dash == std::string_view::npos) {
    return Status::InvalidArgument(
        "config must look like '<Network>-<S|G|W|F>'");
  }
  SOI_ASSIGN_OR_RETURN(const NetworkSpec* spec,
                       FindNetwork(config.substr(0, dash)));
  SOI_ASSIGN_OR_RETURN(const ProbMethod method,
                       ParseMethod(config.substr(dash + 1)));
  const bool learnt =
      method == ProbMethod::kSaito || method == ProbMethod::kGoyal;
  const bool has_gt = spec->gt_prob_mean > 0.0;
  if (learnt != has_gt) {
    return Status::InvalidArgument(
        "network/method mismatch: learnt methods apply to Digg/Flixster/"
        "Twitter, assigned methods to NetHEPT/Epinions/Slashdot");
  }
  if (!(options.scale > 0.0)) {
    return Status::InvalidArgument("scale must be positive");
  }

  // Derive a deterministic per-*network* stream from the seed (FNV-1a mix),
  // so Digg-S and Digg-G learn from the same topology and action log, like
  // the paper's paired settings.
  uint64_t hash = 1469598103934665603ull;
  for (char c : config.substr(0, dash)) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  Rng rng(SplitMix64(hash ^ options.seed).Next());

  SOI_ASSIGN_OR_RETURN(ProbGraph topology,
                       BuildTopology(*spec, options.scale, &rng));

  Dataset dataset;
  dataset.config = std::string(config);
  dataset.network = spec->name;
  dataset.prob_source = MethodLabel(method);
  dataset.directed = spec->directed;

  switch (method) {
    case ProbMethod::kWeightedCascade: {
      SOI_ASSIGN_OR_RETURN(dataset.graph, AssignWeightedCascade(topology));
      break;
    }
    case ProbMethod::kFixed: {
      SOI_ASSIGN_OR_RETURN(dataset.graph, AssignFixed(topology, 0.1));
      break;
    }
    case ProbMethod::kSaito:
    case ProbMethod::kGoyal: {
      SOI_ASSIGN_OR_RETURN(
          const ProbGraph ground_truth,
          AssignExponential(topology, &rng, spec->gt_prob_mean, 1.0));
      LogSimulationOptions log_options;
      log_options.num_items = static_cast<uint32_t>(std::max(
          64.0, options.items_per_node * topology.num_nodes()));
      log_options.seeds_per_item = options.seeds_per_item;
      SOI_ASSIGN_OR_RETURN(const ActionLog log,
                           SimulateActionLog(ground_truth, log_options, &rng));
      if (method == ProbMethod::kSaito) {
        SOI_ASSIGN_OR_RETURN(SaitoResult learnt_result,
                             LearnSaito(topology, log));
        dataset.graph = std::move(learnt_result.graph);
      } else {
        SOI_ASSIGN_OR_RETURN(dataset.graph, LearnGoyal(topology, log));
      }
      break;
    }
  }
  return dataset;
}

}  // namespace soi
