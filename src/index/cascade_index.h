#ifndef SOI_INDEX_CASCADE_INDEX_H_
#define SOI_INDEX_CASCADE_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/prob_graph.h"
#include "scc/condensation.h"
#include "scc/transitive.h"
#include "util/rng.h"
#include "util/status.h"

namespace soi {

/// Diffusion model whose live-edge worlds the index samples. Both models
/// admit a live-edge view (KKT 2003), so everything downstream — typical
/// cascades, spread oracles, InfMax — is model-agnostic.
enum class PropagationModel {
  /// Independent Cascade: every edge flips its own coin (the paper's model).
  kIndependentCascade,
  /// Linear Threshold: every node keeps at most one incoming edge, chosen
  /// with probability equal to its weight (requires per-node in-weights
  /// summing to <= 1; see cascade/threshold.h).
  kLinearThreshold,
};

/// Options for index construction.
struct CascadeIndexOptions {
  /// Number of sampled possible worlds l. Theorem 2: a constant number of
  /// samples suffices for a multiplicative approximation; the paper uses
  /// 1000, we default lower for single-core sweeps.
  uint32_t num_worlds = 128;
  PropagationModel model = PropagationModel::kIndependentCascade;
  /// Apply the transitive reduction to each condensation (paper §4);
  /// disabling is an ablation that trades memory for build time.
  bool transitive_reduction = true;
  ReductionOptions reduction;
};

/// Aggregate construction statistics (reported by benches).
struct CascadeIndexStats {
  double build_seconds = 0.0;
  double avg_components = 0.0;
  double avg_dag_edges_before = 0.0;
  double avg_dag_edges_after = 0.0;
  uint64_t approx_bytes = 0;
};

/// The cascade index of Algorithm 1 (paper §4, Figure 2): for each of the l
/// sampled worlds G_i it stores the SCC condensation (DAG, transitively
/// reduced) plus the node→component matrix I[v, i]. The cascade of v in G_i
/// is then the union of the members of all components reachable from
/// I[v, i], obtained by one DAG traversal — typically far cheaper than
/// re-traversing G_i.
class CascadeIndex {
 public:
  /// Reusable per-thread scratch for cascade queries; sized on first use.
  class Workspace {
   public:
    Workspace() = default;

   private:
    friend class CascadeIndex;
    void Prepare(uint32_t num_components);

    std::vector<uint32_t> stamp_;
    uint32_t stamp_id_ = 0;
    std::vector<uint32_t> comps_;
  };

  /// Samples l worlds from `graph` and builds their condensations.
  static Result<CascadeIndex> Build(const ProbGraph& graph,
                                    const CascadeIndexOptions& options,
                                    Rng* rng);

  /// Reassembles an index from prebuilt condensations (deserialization path;
  /// see index/index_io.h). All condensations must cover `num_nodes` nodes.
  static Result<CascadeIndex> FromWorlds(NodeId num_nodes,
                                         std::vector<Condensation> worlds);

  uint32_t num_worlds() const { return static_cast<uint32_t>(worlds_.size()); }
  NodeId num_nodes() const { return num_nodes_; }
  const CascadeIndexStats& stats() const { return stats_; }

  /// The condensation of world i.
  const Condensation& world(uint32_t i) const {
    SOI_DCHECK(i < worlds_.size());
    return worlds_[i];
  }

  /// The I[v, i] matrix entry: component of v in world i.
  uint32_t ComponentOf(NodeId v, uint32_t i) const {
    return world(i).ComponentOf(v);
  }

  /// Cascade of the seed set in world i, sorted ascending (includes seeds).
  std::vector<NodeId> Cascade(std::span<const NodeId> seeds, uint32_t i,
                              Workspace* ws) const;
  std::vector<NodeId> Cascade(NodeId v, uint32_t i, Workspace* ws) const {
    const NodeId seeds[1] = {v};
    return Cascade(std::span<const NodeId>(seeds, 1), i, ws);
  }

  /// Number of nodes in the cascade, without materializing them.
  uint64_t CascadeSize(std::span<const NodeId> seeds, uint32_t i,
                       Workspace* ws) const;
  uint64_t CascadeSize(NodeId v, uint32_t i, Workspace* ws) const {
    const NodeId seeds[1] = {v};
    return CascadeSize(std::span<const NodeId>(seeds, 1), i, ws);
  }

  /// All l cascades of a seed set (the sample fed to the Jaccard median).
  std::vector<std::vector<NodeId>> AllCascades(std::span<const NodeId> seeds,
                                               Workspace* ws) const;
  std::vector<std::vector<NodeId>> AllCascades(NodeId v, Workspace* ws) const {
    const NodeId seeds[1] = {v};
    return AllCascades(std::span<const NodeId>(seeds, 1), ws);
  }

 private:
  NodeId num_nodes_ = 0;
  std::vector<Condensation> worlds_;
  CascadeIndexStats stats_;
};

}  // namespace soi

#endif  // SOI_INDEX_CASCADE_INDEX_H_
