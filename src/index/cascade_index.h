#ifndef SOI_INDEX_CASCADE_INDEX_H_
#define SOI_INDEX_CASCADE_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/prob_graph.h"
#include "scc/closure.h"
#include "scc/condensation.h"
#include "scc/labels.h"
#include "scc/transitive.h"
#include "util/flat_sets.h"
#include "util/rng.h"
#include "util/status.h"

namespace soi {

/// Diffusion model whose live-edge worlds the index samples. Both models
/// admit a live-edge view (KKT 2003), so everything downstream — typical
/// cascades, spread oracles, InfMax — is model-agnostic.
enum class PropagationModel {
  /// Independent Cascade: every edge flips its own coin (the paper's model).
  kIndependentCascade,
  /// Linear Threshold: every node keeps at most one incoming edge, chosen
  /// with probability equal to its weight (requires per-node in-weights
  /// summing to <= 1; see cascade/threshold.h).
  kLinearThreshold,
};

/// Default retained-size budget for the per-world reachability cache
/// (closures + labels), in MiB: `SOI_CLOSURE_BUDGET_MB` when set to a valid
/// integer, otherwise 512. 0 disables the cache entirely (pure traversal
/// paths).
uint64_t DefaultClosureBudgetMb();

/// Per-world storage tier for reachability state, cheapest first. Query
/// results are byte-identical across tiers; only footprint and per-query
/// cost differ.
enum class WorldTier : uint8_t {
  /// Nothing retained: every query runs the condensation-DAG traversal.
  kTraversal = 0,
  /// Succinct interval labels (scc/labels.h): O(1) single-source size,
  /// streaming enumeration, typically 1–2 orders of magnitude smaller than
  /// the materialized closure.
  kLabels = 1,
  /// Fully materialized closure + cascade runs (scc/closure.h): zero-copy
  /// single-source cascades.
  kMaterialized = 2,
};

/// Which tiers BuildClosureCache may assign.
enum class ClosureTierPolicy : uint8_t {
  /// Per-world greedy, in world order: materialize while the budget lasts,
  /// then labels, then traversal. When everything fits this is exactly the
  /// materialized-only cache (same bytes, same stats).
  kAuto = 0,
  /// Legacy all-or-nothing: materialize every world or retain nothing.
  kMaterialized = 1,
  /// Labels only (greedy under the budget, never materializes) — the
  /// benchmarking tier for the labels-vs-materialized latency ratio.
  kLabels = 2,
  /// Retain nothing; all queries traverse.
  kTraversal = 3,
};

/// Default tier policy: `SOI_CLOSURE_TIER` when set to one of
/// auto|materialized|labels|traversal, otherwise kAuto.
ClosureTierPolicy DefaultClosureTierPolicy();

/// Parses a tier-policy name (the CLI flag / env-var vocabulary).
bool ParseClosureTierPolicy(const char* name, ClosureTierPolicy* out);
const char* ClosureTierPolicyName(ClosureTierPolicy policy);

/// Whether an index (re)assembly path should recompute the per-world
/// reachability-closure cache. The cache is derived data: rebuilding it on
/// every load is correct but costs the full reverse-topological sweep and
/// charges the load-time memory budget — exactly what snapshot loading must
/// avoid (the snapshot carries the closures pre-materialized; see
/// src/snapshot/). kSkip leaves the cache empty (traversal fallback paths,
/// byte-identical results) unless the caller attaches closures explicitly.
enum class RebuildClosures {
  kRebuild,
  kSkip,
};

/// Options for index construction.
struct CascadeIndexOptions {
  /// Number of sampled possible worlds l. Theorem 2: a constant number of
  /// samples suffices for a multiplicative approximation; the paper uses
  /// 1000, we default lower for single-core sweeps.
  uint32_t num_worlds = 128;
  PropagationModel model = PropagationModel::kIndependentCascade;
  /// Apply the transitive reduction to each condensation (paper §4);
  /// disabling is an ablation that trades memory for build time.
  bool transitive_reduction = true;
  ReductionOptions reduction;
  /// Memory budget for the per-world reachability cache (closures +
  /// labels). Under the default kAuto policy each world is assigned the
  /// richest tier that still fits: materialized closure, then interval
  /// labels, then nothing (per-query DAG traversal). Outputs are
  /// byte-identical across tiers. 0 disables the cache.
  uint64_t closure_budget_mb = DefaultClosureBudgetMb();
  /// Which tiers the budget logic may assign (kAuto unless overridden by
  /// the `--closure-tier` flag / `SOI_CLOSURE_TIER`).
  ClosureTierPolicy tier_policy = DefaultClosureTierPolicy();
};

/// Aggregate construction statistics (reported by benches).
struct CascadeIndexStats {
  double build_seconds = 0.0;
  double avg_components = 0.0;
  double avg_dag_edges_before = 0.0;
  double avg_dag_edges_after = 0.0;
  /// Estimated resident bytes of the index payload: condensations plus the
  /// retained reachability cache (closures + labels). Build and FromWorlds
  /// use one shared accounting, so a saved-then-loaded index reports the
  /// same approx_bytes it was built with.
  uint64_t approx_bytes = 0;
  /// Bytes of the retained materialized closures (0 when none).
  uint64_t closure_bytes = 0;
  /// Bytes of the retained interval labels (0 when none).
  uint64_t label_bytes = 0;
  /// Tier population (sums to num_worlds after construction).
  uint32_t worlds_materialized = 0;
  uint32_t worlds_labeled = 0;
  uint32_t worlds_traversal = 0;
};

/// The cascade index of Algorithm 1 (paper §4, Figure 2): for each of the l
/// sampled worlds G_i it stores the SCC condensation (DAG, transitively
/// reduced) plus the node→component matrix I[v, i]. The cascade of v in G_i
/// is then the union of the members of all components reachable from
/// I[v, i], obtained by one DAG traversal — typically far cheaper than
/// re-traversing G_i.
///
/// On top of that, the index memoizes per-world reachability through a
/// three-tier memory hierarchy picked per world under
/// CascadeIndexOptions::closure_budget_mb (see WorldTier):
///
///  - kMaterialized (scc/closure.h): the world's full component closure and
///    cascade runs, computed once in reverse-topological order. A
///    single-source cascade query is a zero-copy span into the runs CSR
///    (CachedCascade), a size query an offset subtraction.
///  - kLabels (scc/labels.h): succinct interval labels over the
///    reverse-topological id order. Size queries stay O(1)
///    (precomputed reach_nodes); enumeration expands the intervals and
///    merges member runs — nothing the size of a closure is ever stored.
///  - kTraversal: per-query DAG traversal, zero retained bytes.
///
/// Query results are byte-identical across tiers and thread counts; the
/// tiers trade only memory against per-query constant factors.
class CascadeIndex {
 public:
  /// Reusable per-thread scratch for cascade queries; sized on first use.
  class Workspace {
   public:
    Workspace() = default;

   private:
    friend class CascadeIndex;
    void Prepare(uint32_t num_components);

    std::vector<uint32_t> stamp_;
    uint32_t stamp_id_ = 0;
    std::vector<uint32_t> comps_;
    RunMergeScratch merge_;  // k-way member-run merge scratch
  };

  /// Flat reusable arena for batches of extracted cascades: one contiguous
  /// buffer instead of one heap allocation per (seed set, world). Backed by
  /// a FlatSets arena, so batches feed straight into the cover engine /
  /// InfMaxTC flat paths without repacking. Views are only valid until the
  /// next append/Clear.
  class CascadeArena {
   public:
    void Clear() { sets_.Clear(); }
    size_t num_cascades() const { return sets_.num_sets(); }
    std::span<const NodeId> View(size_t i) const { return sets_.Set(i); }
    /// The underlying flat storage (same indexing as View()).
    const FlatSets& flat() const { return sets_; }
    /// All cascades as spans (rebuilt on every call; the return stays valid
    /// as long as the arena is not appended to or cleared).
    const std::vector<std::span<const NodeId>>& Views() {
      views_.clear();
      views_.reserve(sets_.num_sets());
      for (size_t i = 0; i < sets_.num_sets(); ++i) views_.push_back(View(i));
      return views_;
    }

   private:
    friend class CascadeIndex;
    FlatSets sets_;
    std::vector<std::span<const NodeId>> views_;
  };

  /// Samples l worlds from `graph` and builds their condensations (and the
  /// closure cache, budget permitting).
  static Result<CascadeIndex> Build(const ProbGraph& graph,
                                    const CascadeIndexOptions& options,
                                    Rng* rng);

  /// Reassembles an index from prebuilt condensations (deserialization path;
  /// see index/index_io.h). All condensations must cover `num_nodes` nodes.
  /// The closure cache is derived data and is never serialized by the legacy
  /// format; with `rebuild == kRebuild` it is recomputed here under
  /// `closure_budget_mb` (default: same env-driven budget as Build), so
  /// loaded indexes answer queries at cached speed. Pass kSkip when the
  /// caller provides closures from elsewhere (snapshot mmap) or wants pure
  /// traversal paths — the rebuild sweep and its budget charge are skipped
  /// entirely.
  static Result<CascadeIndex> FromWorlds(
      NodeId num_nodes, std::vector<Condensation> worlds,
      uint64_t closure_budget_mb = DefaultClosureBudgetMb(),
      RebuildClosures rebuild = RebuildClosures::kRebuild,
      ClosureTierPolicy tier_policy = DefaultClosureTierPolicy());

  /// Assembles an index from prebuilt condensations AND prebuilt
  /// reachability state (the snapshot load path: everything typically
  /// borrows spans into one mmap'd file, so assembly is O(num_worlds)
  /// bookkeeping — no sampling, no SCC runs, no closure sweep).
  ///
  /// With `tiers` empty the legacy two-state contract applies: `closures`
  /// must be empty (all worlds traverse) or have exactly one closure per
  /// world (all worlds materialized). With `tiers` given (one per world),
  /// `closures`/`labels` are indexed per world and must be populated — with
  /// matching component counts — exactly where the tier says so.
  static Result<CascadeIndex> FromParts(
      NodeId num_nodes, std::vector<Condensation> worlds,
      std::vector<ReachabilityClosure> closures,
      std::vector<ReachLabels> labels = {},
      std::vector<WorldTier> tiers = {});

  uint32_t num_worlds() const { return static_cast<uint32_t>(worlds_.size()); }
  NodeId num_nodes() const { return num_nodes_; }
  const CascadeIndexStats& stats() const { return stats_; }

  /// The condensation of world i.
  const Condensation& world(uint32_t i) const {
    SOI_DCHECK(i < worlds_.size());
    return worlds_[i];
  }

  /// True when EVERY world carries a materialized closure — the strongest
  /// cache state, in which CachedCascade is valid for any world. Mixed-tier
  /// and labels-only indexes answer the same queries byte-identically
  /// through Cascade/CascadeSize/AppendCascade, just not via zero-copy
  /// spans for non-materialized worlds.
  bool has_closure_cache() const {
    return !worlds_.empty() && num_materialized_ == worlds_.size();
  }

  /// Storage tier of world i.
  WorldTier tier(uint32_t i) const {
    SOI_DCHECK(i < tiers_.size());
    return tiers_[i];
  }

  /// True when every world answers size queries in O(1) — i.e. no world is
  /// on the traversal tier (the spread oracle's first-round fast path).
  bool has_fast_counts() const {
    return !worlds_.empty() &&
           num_materialized_ + num_labeled_ == worlds_.size();
  }

  /// The reachability closure of world i; only valid when
  /// tier(i) == kMaterialized.
  const ReachabilityClosure& closure(uint32_t i) const {
    SOI_DCHECK(i < closures_.size());
    SOI_DCHECK(tiers_[i] == WorldTier::kMaterialized);
    return closures_[i];
  }

  /// The interval labels of world i; only valid when tier(i) == kLabels.
  const ReachLabels& labels(uint32_t i) const {
    SOI_DCHECK(i < labels_.size());
    SOI_DCHECK(tiers_[i] == WorldTier::kLabels);
    return labels_[i];
  }

  /// Cascade size of component `comp` in world i, O(1); only valid when
  /// tier(i) != kTraversal.
  uint32_t ReachNodeCount(uint32_t comp, uint32_t i) const {
    SOI_DCHECK(i < tiers_.size());
    SOI_DCHECK(tiers_[i] != WorldTier::kTraversal);
    return tiers_[i] == WorldTier::kMaterialized
               ? closures_[i].NodeCount(comp)
               : labels_[i].NodeCount(comp);
  }

  /// The I[v, i] matrix entry: component of v in world i.
  uint32_t ComponentOf(NodeId v, uint32_t i) const {
    return world(i).ComponentOf(v);
  }

  // -- In-place world patching (dynamic-update path; see src/dynamic/) ----

  /// Replaces the condensation of world i. Owned-mode condensation covering
  /// num_nodes() nodes; the caller (DynamicIndex) guarantees it was built
  /// from the world's current live-edge set. Does NOT touch the
  /// reachability cache or stats — the caller must restore cache
  /// consistency (SetClosure / DropClosureCache / RebuildClosureTiers) and
  /// finish the batch with RecomputeStats().
  void ReplaceWorld(uint32_t i, Condensation cond);

  /// Replaces the cached closure of world i; only valid while
  /// has_closure_cache() (component count must match the world's current
  /// condensation).
  void SetClosure(uint32_t i, ReachabilityClosure closure);

  /// Drops the whole reachability cache — every world falls back to DAG
  /// traversal with byte-identical answers. The dynamic layer calls this
  /// when a patch pushes the cache past its budget — mirroring the
  /// all-or-nothing policy of the kMaterialized tier policy.
  void DropClosureCache();

  /// Recomputes the full tier assignment from the current worlds (the
  /// dynamic layer's recovery path after patching a mixed-tier index).
  /// Deterministic: depends only on the worlds, budget and policy. Stats
  /// are updated in place.
  void RebuildClosureTiers(uint64_t budget_mb, ClosureTierPolicy policy);

  /// Byte-granular variant of RebuildClosureTiers for callers that need
  /// exact budget boundaries (tests, embedders metering their own pools).
  /// A world whose retained bytes land exactly on the remaining budget is
  /// admitted (<=, not <).
  void RebuildClosureTiersBytes(uint64_t budget_bytes,
                                ClosureTierPolicy policy);

  /// Re-derives avg_components / avg_dag_edges / approx_bytes /
  /// closure_bytes from the current worlds and closures after a patch
  /// batch. Pre-reduction DAG edge counts are not observable here, so
  /// avg_dag_edges_before is reported equal to the stored count (the same
  /// convention as FromWorlds).
  void RecomputeStats();

  /// Validates a query seed set: non-empty, every id < num_nodes(). The
  /// query entry points below call this themselves; it is public so batch
  /// drivers (the service layer) can validate once and then use the
  /// unchecked per-world kernels.
  Status ValidateSeeds(std::span<const NodeId> seeds) const;

  /// Validates a world index against num_worlds().
  Status ValidateWorld(uint32_t i) const;

  /// Zero-copy cascade of single source v in world i: a span into the
  /// memoized run, sorted ascending, valid for the index's lifetime.
  ///
  /// Unchecked hot kernel: requires tier(i) == kMaterialized,
  /// v < num_nodes() and i < num_worlds() (pre-validated by the caller;
  /// debug-checked). Identical content to Cascade(v, i, ws).
  std::span<const NodeId> CachedCascade(NodeId v, uint32_t i) const {
    SOI_DCHECK(i < tiers_.size() && tiers_[i] == WorldTier::kMaterialized);
    SOI_DCHECK(v < num_nodes_);
    return closures_[i].Cascade(world(i).ComponentOf(v));
  }

  /// Cascade of the seed set in world i, sorted ascending (includes seeds).
  /// Validated entry point: bad seeds or world index return a Status
  /// instead of aborting.
  Result<std::vector<NodeId>> Cascade(std::span<const NodeId> seeds,
                                      uint32_t i, Workspace* ws) const;
  Result<std::vector<NodeId>> Cascade(NodeId v, uint32_t i,
                                      Workspace* ws) const {
    const NodeId seeds[1] = {v};
    return Cascade(std::span<const NodeId>(seeds, 1), i, ws);
  }

  /// Appends the cascade of the seed set in world i to `arena` (allocation
  /// amortized across the arena's lifetime).
  ///
  /// Unchecked hot kernel: seeds and world index must be pre-validated
  /// (ValidateSeeds/ValidateWorld); out-of-range input is a programming
  /// error, debug-checked only.
  void AppendCascade(std::span<const NodeId> seeds, uint32_t i, Workspace* ws,
                     CascadeArena* arena) const;
  void AppendCascade(NodeId v, uint32_t i, Workspace* ws,
                     CascadeArena* arena) const {
    const NodeId seeds[1] = {v};
    AppendCascade(std::span<const NodeId>(seeds, 1), i, ws, arena);
  }

  /// Number of nodes in the cascade, without materializing them. O(1) for a
  /// single seed when the closure cache is present. Validated entry point.
  Result<uint64_t> CascadeSize(std::span<const NodeId> seeds, uint32_t i,
                               Workspace* ws) const;
  Result<uint64_t> CascadeSize(NodeId v, uint32_t i, Workspace* ws) const {
    const NodeId seeds[1] = {v};
    return CascadeSize(std::span<const NodeId>(seeds, 1), i, ws);
  }

  /// All l cascades of a seed set (the sample fed to the Jaccard median).
  /// Validated entry point.
  Result<std::vector<std::vector<NodeId>>> AllCascades(
      std::span<const NodeId> seeds, Workspace* ws) const;
  Result<std::vector<std::vector<NodeId>>> AllCascades(NodeId v,
                                                       Workspace* ws) const {
    const NodeId seeds[1] = {v};
    return AllCascades(std::span<const NodeId>(seeds, 1), ws);
  }

  /// All l cascades of a seed set into a reusable arena (clears it first).
  /// The zero-allocation sibling of AllCascades for sweep loops. Validated
  /// entry point; on error the arena is left cleared.
  Status AllCascadesInto(std::span<const NodeId> seeds, Workspace* ws,
                         CascadeArena* arena) const;

 private:
  // Appends the cascade of `seeds` in world i to *out (sorted ascending).
  void CascadeInto(std::span<const NodeId> seeds, uint32_t i, Workspace* ws,
                   std::vector<NodeId>* out) const;

  // Fills avg_components / avg_dag_edges_after / approx_bytes from worlds_
  // (one accounting shared by Build and FromWorlds; closure bytes are added
  // by BuildClosureCache). Leaves avg_dag_edges_before to the caller: only
  // Build observes pre-reduction edge counts, FromWorlds sets it equal to
  // the stored (post-reduction) count.
  void ComputeSharedStats();

  // Assigns every world its storage tier under `budget_bytes` and `policy`
  // and builds the retained state (closures / labels). Re-entrant: strips
  // any previous cache contribution from the stats first. The assignment
  // depends only on the worlds, the budget and the policy, never on the
  // thread count: tier choice is a sequential world-order greedy over
  // deterministic per-world sizes.
  void BuildClosureCache(uint64_t budget_bytes, ClosureTierPolicy policy);

  // Recomputes num_materialized_/num_labeled_, the stats tier population
  // and the cache byte totals from tiers_/closures_/labels_ (adds cache
  // bytes to stats_.approx_bytes).
  void AccountCacheStats();

  NodeId num_nodes_ = 0;
  std::vector<Condensation> worlds_;
  // Tier state. tiers_ always has one entry per world. closures_ is either
  // empty or one entry per world, populated exactly where
  // tiers_[i] == kMaterialized; labels_ likewise for kLabels.
  std::vector<WorldTier> tiers_;
  std::vector<ReachabilityClosure> closures_;
  std::vector<ReachLabels> labels_;
  uint32_t num_materialized_ = 0;
  uint32_t num_labeled_ = 0;
  CascadeIndexStats stats_;
};

}  // namespace soi

#endif  // SOI_INDEX_CASCADE_INDEX_H_
