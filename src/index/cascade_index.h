#ifndef SOI_INDEX_CASCADE_INDEX_H_
#define SOI_INDEX_CASCADE_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/prob_graph.h"
#include "scc/closure.h"
#include "scc/condensation.h"
#include "scc/transitive.h"
#include "util/flat_sets.h"
#include "util/rng.h"
#include "util/status.h"

namespace soi {

/// Diffusion model whose live-edge worlds the index samples. Both models
/// admit a live-edge view (KKT 2003), so everything downstream — typical
/// cascades, spread oracles, InfMax — is model-agnostic.
enum class PropagationModel {
  /// Independent Cascade: every edge flips its own coin (the paper's model).
  kIndependentCascade,
  /// Linear Threshold: every node keeps at most one incoming edge, chosen
  /// with probability equal to its weight (requires per-node in-weights
  /// summing to <= 1; see cascade/threshold.h).
  kLinearThreshold,
};

/// Default retained-size budget for the per-world closure cache, in MiB:
/// `SOI_CLOSURE_BUDGET_MB` when set to a valid integer, otherwise 512.
/// 0 disables the cache entirely (pure traversal paths).
uint64_t DefaultClosureBudgetMb();

/// Whether an index (re)assembly path should recompute the per-world
/// reachability-closure cache. The cache is derived data: rebuilding it on
/// every load is correct but costs the full reverse-topological sweep and
/// charges the load-time memory budget — exactly what snapshot loading must
/// avoid (the snapshot carries the closures pre-materialized; see
/// src/snapshot/). kSkip leaves the cache empty (traversal fallback paths,
/// byte-identical results) unless the caller attaches closures explicitly.
enum class RebuildClosures {
  kRebuild,
  kSkip,
};

/// Options for index construction.
struct CascadeIndexOptions {
  /// Number of sampled possible worlds l. Theorem 2: a constant number of
  /// samples suffices for a multiplicative approximation; the paper uses
  /// 1000, we default lower for single-core sweeps.
  uint32_t num_worlds = 128;
  PropagationModel model = PropagationModel::kIndependentCascade;
  /// Apply the transitive reduction to each condensation (paper §4);
  /// disabling is an ablation that trades memory for build time.
  bool transitive_reduction = true;
  ReductionOptions reduction;
  /// Memory budget for the per-world reachability-closure cache (see
  /// scc/closure.h). When the total closure size across worlds would exceed
  /// this many MiB the cache is dropped and every query falls back to the
  /// per-query DAG traversal; outputs are byte-identical either way.
  /// 0 disables the cache.
  uint64_t closure_budget_mb = DefaultClosureBudgetMb();
};

/// Aggregate construction statistics (reported by benches).
struct CascadeIndexStats {
  double build_seconds = 0.0;
  double avg_components = 0.0;
  double avg_dag_edges_before = 0.0;
  double avg_dag_edges_after = 0.0;
  /// Estimated resident bytes of the index payload: condensations plus the
  /// closure cache when retained (== closure_bytes > 0). Build and
  /// FromWorlds use one shared accounting, so a saved-then-loaded index
  /// reports the same approx_bytes it was built with.
  uint64_t approx_bytes = 0;
  /// Bytes of the retained closure cache (0 when disabled / over budget).
  uint64_t closure_bytes = 0;
};

/// The cascade index of Algorithm 1 (paper §4, Figure 2): for each of the l
/// sampled worlds G_i it stores the SCC condensation (DAG, transitively
/// reduced) plus the node→component matrix I[v, i]. The cascade of v in G_i
/// is then the union of the members of all components reachable from
/// I[v, i], obtained by one DAG traversal — typically far cheaper than
/// re-traversing G_i.
///
/// On top of that, the index memoizes per-world reachability: each world's
/// full component closure is computed once in reverse-topological order and
/// each component's cascade run is materialized once (scc/closure.h), after
/// which a single-source cascade query is a zero-copy span into the runs CSR
/// (see CachedCascade), a cascade-size query is an offset subtraction, and a
/// seed-set cascade is a stamped union of closure lists plus one run merge.
/// The cache is guarded by CascadeIndexOptions::closure_budget_mb; when
/// absent, queries fall back to the traversal path with byte-identical
/// results.
class CascadeIndex {
 public:
  /// Reusable per-thread scratch for cascade queries; sized on first use.
  class Workspace {
   public:
    Workspace() = default;

   private:
    friend class CascadeIndex;
    void Prepare(uint32_t num_components);

    std::vector<uint32_t> stamp_;
    uint32_t stamp_id_ = 0;
    std::vector<uint32_t> comps_;
    RunMergeScratch merge_;  // k-way member-run merge scratch
  };

  /// Flat reusable arena for batches of extracted cascades: one contiguous
  /// buffer instead of one heap allocation per (seed set, world). Backed by
  /// a FlatSets arena, so batches feed straight into the cover engine /
  /// InfMaxTC flat paths without repacking. Views are only valid until the
  /// next append/Clear.
  class CascadeArena {
   public:
    void Clear() { sets_.Clear(); }
    size_t num_cascades() const { return sets_.num_sets(); }
    std::span<const NodeId> View(size_t i) const { return sets_.Set(i); }
    /// The underlying flat storage (same indexing as View()).
    const FlatSets& flat() const { return sets_; }
    /// All cascades as spans (rebuilt on every call; the return stays valid
    /// as long as the arena is not appended to or cleared).
    const std::vector<std::span<const NodeId>>& Views() {
      views_.clear();
      views_.reserve(sets_.num_sets());
      for (size_t i = 0; i < sets_.num_sets(); ++i) views_.push_back(View(i));
      return views_;
    }

   private:
    friend class CascadeIndex;
    FlatSets sets_;
    std::vector<std::span<const NodeId>> views_;
  };

  /// Samples l worlds from `graph` and builds their condensations (and the
  /// closure cache, budget permitting).
  static Result<CascadeIndex> Build(const ProbGraph& graph,
                                    const CascadeIndexOptions& options,
                                    Rng* rng);

  /// Reassembles an index from prebuilt condensations (deserialization path;
  /// see index/index_io.h). All condensations must cover `num_nodes` nodes.
  /// The closure cache is derived data and is never serialized by the legacy
  /// format; with `rebuild == kRebuild` it is recomputed here under
  /// `closure_budget_mb` (default: same env-driven budget as Build), so
  /// loaded indexes answer queries at cached speed. Pass kSkip when the
  /// caller provides closures from elsewhere (snapshot mmap) or wants pure
  /// traversal paths — the rebuild sweep and its budget charge are skipped
  /// entirely.
  static Result<CascadeIndex> FromWorlds(
      NodeId num_nodes, std::vector<Condensation> worlds,
      uint64_t closure_budget_mb = DefaultClosureBudgetMb(),
      RebuildClosures rebuild = RebuildClosures::kRebuild);

  /// Assembles an index from prebuilt condensations AND prebuilt closures
  /// (the snapshot load path: both typically borrow spans into one mmap'd
  /// file, so assembly is O(num_worlds) bookkeeping — no sampling, no SCC
  /// runs, no closure sweep). `closures` must be empty (traversal paths) or
  /// have exactly one closure per world with matching component counts.
  static Result<CascadeIndex> FromParts(
      NodeId num_nodes, std::vector<Condensation> worlds,
      std::vector<ReachabilityClosure> closures);

  uint32_t num_worlds() const { return static_cast<uint32_t>(worlds_.size()); }
  NodeId num_nodes() const { return num_nodes_; }
  const CascadeIndexStats& stats() const { return stats_; }

  /// The condensation of world i.
  const Condensation& world(uint32_t i) const {
    SOI_DCHECK(i < worlds_.size());
    return worlds_[i];
  }

  /// True when the per-world closure cache was retained under the budget.
  bool has_closure_cache() const { return !closures_.empty(); }

  /// The reachability closure of world i; only valid with
  /// has_closure_cache().
  const ReachabilityClosure& closure(uint32_t i) const {
    SOI_DCHECK(i < closures_.size());
    return closures_[i];
  }

  /// The I[v, i] matrix entry: component of v in world i.
  uint32_t ComponentOf(NodeId v, uint32_t i) const {
    return world(i).ComponentOf(v);
  }

  // -- In-place world patching (dynamic-update path; see src/dynamic/) ----

  /// Replaces the condensation of world i. Owned-mode condensation covering
  /// num_nodes() nodes; the caller (DynamicIndex) guarantees it was built
  /// from the world's current live-edge set. Does NOT touch the closure
  /// cache or stats — patch those via SetClosure/DropClosureCache and
  /// finish the batch with RecomputeStats().
  void ReplaceWorld(uint32_t i, Condensation cond);

  /// Replaces the cached closure of world i; only valid while
  /// has_closure_cache() (component count must match the world's current
  /// condensation).
  void SetClosure(uint32_t i, ReachabilityClosure closure);

  /// Drops the whole closure cache (queries fall back to DAG traversal with
  /// byte-identical answers). The dynamic layer calls this when a patch
  /// pushes the cache past its budget — mirroring the all-or-nothing policy
  /// of BuildClosureCache.
  void DropClosureCache();

  /// Re-derives avg_components / avg_dag_edges / approx_bytes /
  /// closure_bytes from the current worlds and closures after a patch
  /// batch. Pre-reduction DAG edge counts are not observable here, so
  /// avg_dag_edges_before is reported equal to the stored count (the same
  /// convention as FromWorlds).
  void RecomputeStats();

  /// Validates a query seed set: non-empty, every id < num_nodes(). The
  /// query entry points below call this themselves; it is public so batch
  /// drivers (the service layer) can validate once and then use the
  /// unchecked per-world kernels.
  Status ValidateSeeds(std::span<const NodeId> seeds) const;

  /// Validates a world index against num_worlds().
  Status ValidateWorld(uint32_t i) const;

  /// Zero-copy cascade of single source v in world i: a span into the
  /// memoized run, sorted ascending, valid for the index's lifetime.
  ///
  /// Unchecked hot kernel: requires has_closure_cache(), v < num_nodes()
  /// and i < num_worlds() (pre-validated by the caller; debug-checked).
  /// Identical content to Cascade(v, i, ws).
  std::span<const NodeId> CachedCascade(NodeId v, uint32_t i) const {
    SOI_DCHECK(has_closure_cache());
    SOI_DCHECK(v < num_nodes_);
    return closures_[i].Cascade(world(i).ComponentOf(v));
  }

  /// Cascade of the seed set in world i, sorted ascending (includes seeds).
  /// Validated entry point: bad seeds or world index return a Status
  /// instead of aborting.
  Result<std::vector<NodeId>> Cascade(std::span<const NodeId> seeds,
                                      uint32_t i, Workspace* ws) const;
  Result<std::vector<NodeId>> Cascade(NodeId v, uint32_t i,
                                      Workspace* ws) const {
    const NodeId seeds[1] = {v};
    return Cascade(std::span<const NodeId>(seeds, 1), i, ws);
  }

  /// Appends the cascade of the seed set in world i to `arena` (allocation
  /// amortized across the arena's lifetime).
  ///
  /// Unchecked hot kernel: seeds and world index must be pre-validated
  /// (ValidateSeeds/ValidateWorld); out-of-range input is a programming
  /// error, debug-checked only.
  void AppendCascade(std::span<const NodeId> seeds, uint32_t i, Workspace* ws,
                     CascadeArena* arena) const;
  void AppendCascade(NodeId v, uint32_t i, Workspace* ws,
                     CascadeArena* arena) const {
    const NodeId seeds[1] = {v};
    AppendCascade(std::span<const NodeId>(seeds, 1), i, ws, arena);
  }

  /// Number of nodes in the cascade, without materializing them. O(1) for a
  /// single seed when the closure cache is present. Validated entry point.
  Result<uint64_t> CascadeSize(std::span<const NodeId> seeds, uint32_t i,
                               Workspace* ws) const;
  Result<uint64_t> CascadeSize(NodeId v, uint32_t i, Workspace* ws) const {
    const NodeId seeds[1] = {v};
    return CascadeSize(std::span<const NodeId>(seeds, 1), i, ws);
  }

  /// All l cascades of a seed set (the sample fed to the Jaccard median).
  /// Validated entry point.
  Result<std::vector<std::vector<NodeId>>> AllCascades(
      std::span<const NodeId> seeds, Workspace* ws) const;
  Result<std::vector<std::vector<NodeId>>> AllCascades(NodeId v,
                                                       Workspace* ws) const {
    const NodeId seeds[1] = {v};
    return AllCascades(std::span<const NodeId>(seeds, 1), ws);
  }

  /// All l cascades of a seed set into a reusable arena (clears it first).
  /// The zero-allocation sibling of AllCascades for sweep loops. Validated
  /// entry point; on error the arena is left cleared.
  Status AllCascadesInto(std::span<const NodeId> seeds, Workspace* ws,
                         CascadeArena* arena) const;

 private:
  // Appends the cascade of `seeds` in world i to *out (sorted ascending).
  void CascadeInto(std::span<const NodeId> seeds, uint32_t i, Workspace* ws,
                   std::vector<NodeId>* out) const;

  // Fills avg_components / avg_dag_edges_after / approx_bytes from worlds_
  // (one accounting shared by Build and FromWorlds; closure bytes are added
  // by BuildClosureCache). Leaves avg_dag_edges_before to the caller: only
  // Build observes pre-reduction edge counts, FromWorlds sets it equal to
  // the stored (post-reduction) count.
  void ComputeSharedStats();

  // Builds the per-world closure cache if it fits `budget_mb`; otherwise
  // leaves the cache empty. Records which path future queries take via the
  // index/closure_cache_{built,skipped_budget,disabled} counters. The
  // kept/dropped decision depends only on the worlds and the budget, never
  // on the thread count.
  void BuildClosureCache(uint64_t budget_mb);

  NodeId num_nodes_ = 0;
  std::vector<Condensation> worlds_;
  std::vector<ReachabilityClosure> closures_;  // empty = traversal paths
  CascadeIndexStats stats_;
};

}  // namespace soi

#endif  // SOI_INDEX_CASCADE_INDEX_H_
