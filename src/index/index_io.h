#ifndef SOI_INDEX_INDEX_IO_H_
#define SOI_INDEX_INDEX_IO_H_

#include <string>

#include "index/cascade_index.h"
#include "util/status.h"

namespace soi {

/// Binary persistence for the cascade index. The paper's deployment story
/// (§8) is "precompute the spheres of influence once, reuse them across
/// campaigns" — persisting the sampled condensations makes the index itself
/// reusable across processes.
///
/// Format (little-endian, versioned):
///   magic "SOIIDX\0", u32 version, u32 num_nodes, u32 num_worlds
///   per world:
///     u32 num_components
///     u32 comp_of[num_nodes]
///     u32 num_dag_edges
///     u32 dag_offsets[num_components + 1]
///     u32 dag_targets[num_dag_edges]
///   u64 FNV-1a checksum of everything after the magic
///
/// The members CSR is not stored; it is rebuilt from comp_of on load.

/// Serializes the index to a byte string.
std::string SerializeCascadeIndex(const CascadeIndex& index);

/// Parses an index from bytes produced by SerializeCascadeIndex. The legacy
/// format never stores the closure cache; `rebuild` says whether to
/// recompute it here (kRebuild, the default — loaded indexes answer at
/// cached speed) or skip the sweep and its memory-budget charge entirely
/// (kSkip — callers that immediately discard the cache, or attach closures
/// from elsewhere, stop paying for a rebuild they never use).
Result<CascadeIndex> DeserializeCascadeIndex(
    const std::string& bytes,
    RebuildClosures rebuild = RebuildClosures::kRebuild);

/// Writes the index to a file.
Status SaveCascadeIndex(const CascadeIndex& index, const std::string& path);

/// Loads an index from a file. See DeserializeCascadeIndex for `rebuild`.
Result<CascadeIndex> LoadCascadeIndex(
    const std::string& path,
    RebuildClosures rebuild = RebuildClosures::kRebuild);

}  // namespace soi

#endif  // SOI_INDEX_INDEX_IO_H_
