#include "index/cascade_index.h"

#include <algorithm>
#include <optional>

#include "cascade/threshold.h"
#include "cascade/world.h"
#include "obs/metrics.h"
#include "runtime/parallel_for.h"
#include "util/stats.h"

namespace soi {

void CascadeIndex::Workspace::Prepare(uint32_t num_components) {
  if (stamp_.size() < num_components) {
    stamp_.assign(num_components, 0);
    stamp_id_ = 0;
  }
  if (++stamp_id_ == 0) {  // stamp counter wrapped: hard reset
    std::fill(stamp_.begin(), stamp_.end(), 0);
    stamp_id_ = 1;
  }
  comps_.clear();
}

Result<CascadeIndex> CascadeIndex::Build(const ProbGraph& graph,
                                         const CascadeIndexOptions& options,
                                         Rng* rng) {
  if (options.num_worlds == 0) {
    return Status::InvalidArgument("CascadeIndex: num_worlds must be >= 1");
  }
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("CascadeIndex: empty graph");
  }
  WallTimer timer;
  SOI_OBS_SPAN("index/build");
  CascadeIndex index;
  index.num_nodes_ = graph.num_nodes();

  // Linear Threshold worlds share an amortized sampler (validates weights
  // and precomputes cumulative in-weights once).
  std::optional<LtWorldSampler> lt_sampler;
  if (options.model == PropagationModel::kLinearThreshold) {
    SOI_ASSIGN_OR_RETURN(lt_sampler, LtWorldSampler::Create(graph));
  }

  // World i samples from its own stream, so the built index is identical
  // for every thread count; the master rng advances exactly once per Build,
  // so consecutive Builds from one rng still get fresh worlds.
  const Rng streams = rng->Fork();
  struct WorldStats {
    uint32_t components = 0;
    uint32_t edges_before = 0;
    uint32_t edges_after = 0;
  };
  std::vector<Condensation> worlds(options.num_worlds);
  std::vector<WorldStats> world_stats(options.num_worlds);
  ParallelFor(0, options.num_worlds, /*grain=*/1, [&](uint64_t i) {
    Rng world_rng = streams.Fork(i);
    std::optional<Csr> world;
    {
      SOI_OBS_SPAN("index/sample_world");
      world.emplace(lt_sampler.has_value() ? lt_sampler->Sample(&world_rng)
                                           : SampleWorld(graph, &world_rng));
    }
    std::optional<Condensation> cond;
    {
      SOI_OBS_SPAN("index/scc_condense");
      cond.emplace(Condensation::Build(*world));
    }
    uint32_t before = cond->num_dag_edges();
    uint32_t after = before;
    if (options.transitive_reduction) {
      SOI_OBS_SPAN("index/transitive_reduce");
      const ReductionStats rstats = TransitiveReduce(&*cond, options.reduction);
      before = rstats.edges_before;
      after = rstats.edges_after;
    }
    world_stats[i] = {cond->num_components(), before, after};
    worlds[i] = std::move(*cond);
  });
  SOI_OBS_COUNTER_ADD("index/worlds_built", options.num_worlds);

  // Ordered reduction: accumulate floating-point stats in world order.
  RunningStats comps, edges_before, edges_after;
  uint64_t edges_removed = 0;
  for (uint32_t i = 0; i < options.num_worlds; ++i) {
    comps.Add(world_stats[i].components);
    edges_before.Add(world_stats[i].edges_before);
    edges_after.Add(world_stats[i].edges_after);
    edges_removed += world_stats[i].edges_before - world_stats[i].edges_after;
  }
  SOI_OBS_COUNTER_ADD("index/dag_edges_removed", edges_removed);
  index.worlds_ = std::move(worlds);

  index.stats_.build_seconds = timer.ElapsedSeconds();
  index.stats_.avg_components = comps.mean();
  index.stats_.avg_dag_edges_before = edges_before.mean();
  index.stats_.avg_dag_edges_after = edges_after.mean();
  uint64_t bytes = 0;
  for (const Condensation& c : index.worlds_) {
    bytes += 4ull * c.comp_of().size();          // I[v, i] column
    bytes += 4ull * (c.num_components() + 1);    // members offsets
    bytes += 4ull * c.num_nodes();               // members targets
    bytes += 4ull * (c.num_components() + 1);    // dag offsets
    bytes += 4ull * c.num_dag_edges();           // dag targets
  }
  index.stats_.approx_bytes = bytes;
  return index;
}

Result<CascadeIndex> CascadeIndex::FromWorlds(NodeId num_nodes,
                                              std::vector<Condensation> worlds) {
  if (num_nodes == 0) return Status::InvalidArgument("empty node set");
  if (worlds.empty()) return Status::InvalidArgument("no worlds");
  for (const Condensation& c : worlds) {
    if (c.num_nodes() != num_nodes) {
      return Status::InvalidArgument("condensation node count mismatch");
    }
  }
  CascadeIndex index;
  index.num_nodes_ = num_nodes;
  RunningStats comps, edges;
  uint64_t bytes = 0;
  for (const Condensation& c : worlds) {
    comps.Add(c.num_components());
    edges.Add(c.num_dag_edges());
    bytes += 4ull * c.comp_of().size() + 4ull * c.num_nodes() +
             8ull * (c.num_components() + 1) + 4ull * c.num_dag_edges();
  }
  index.stats_.avg_components = comps.mean();
  index.stats_.avg_dag_edges_before = edges.mean();
  index.stats_.avg_dag_edges_after = edges.mean();
  index.stats_.approx_bytes = bytes;
  index.worlds_ = std::move(worlds);
  return index;
}

std::vector<NodeId> CascadeIndex::Cascade(std::span<const NodeId> seeds,
                                          uint32_t i, Workspace* ws) const {
  const Condensation& cond = world(i);
  ws->Prepare(cond.num_components());
  for (NodeId s : seeds) {
    SOI_CHECK(s < num_nodes_);
    ReachableComponents(cond, cond.ComponentOf(s), &ws->stamp_, ws->stamp_id_,
                        &ws->comps_);
  }
  std::vector<NodeId> out;
  for (uint32_t c : ws->comps_) {
    const auto members = cond.ComponentMembers(c);
    out.insert(out.end(), members.begin(), members.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t CascadeIndex::CascadeSize(std::span<const NodeId> seeds, uint32_t i,
                                   Workspace* ws) const {
  const Condensation& cond = world(i);
  ws->Prepare(cond.num_components());
  for (NodeId s : seeds) {
    SOI_CHECK(s < num_nodes_);
    ReachableComponents(cond, cond.ComponentOf(s), &ws->stamp_, ws->stamp_id_,
                        &ws->comps_);
  }
  uint64_t total = 0;
  for (uint32_t c : ws->comps_) total += cond.ComponentSize(c);
  return total;
}

std::vector<std::vector<NodeId>> CascadeIndex::AllCascades(
    std::span<const NodeId> seeds, Workspace* ws) const {
  std::vector<std::vector<NodeId>> out;
  out.reserve(num_worlds());
  for (uint32_t i = 0; i < num_worlds(); ++i) {
    out.push_back(Cascade(seeds, i, ws));
  }
  return out;
}

}  // namespace soi
