#include "index/cascade_index.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <optional>
#include <string_view>

#include "cascade/threshold.h"
#include "cascade/world.h"
#include "obs/metrics.h"
#include "runtime/parallel_for.h"
#include "util/arena.h"
#include "util/stats.h"

namespace soi {

namespace {

// Resident-byte estimate of one condensation: the I[v, i] column, the
// members CSR and the DAG CSR. One formula for every construction path so
// Build and FromWorlds (load) report identical approx_bytes.
uint64_t CondensationApproxBytes(const Condensation& c) {
  return 4ull * c.comp_of().size() +         // I[v, i] column
         4ull * (c.num_components() + 1) +   // members offsets
         4ull * c.num_nodes() +              // members targets
         4ull * (c.num_components() + 1) +   // dag offsets
         4ull * c.num_dag_edges();           // dag targets
}

}  // namespace

uint64_t DefaultClosureBudgetMb() {
  static const uint64_t budget = [] {
    const char* env = std::getenv("SOI_CLOSURE_BUDGET_MB");
    if (env == nullptr || *env == '\0') return uint64_t{512};
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0') return uint64_t{512};
    return static_cast<uint64_t>(parsed);
  }();
  return budget;
}

bool ParseClosureTierPolicy(const char* name, ClosureTierPolicy* out) {
  const std::string_view s(name);
  if (s == "auto") {
    *out = ClosureTierPolicy::kAuto;
  } else if (s == "materialized") {
    *out = ClosureTierPolicy::kMaterialized;
  } else if (s == "labels") {
    *out = ClosureTierPolicy::kLabels;
  } else if (s == "traversal") {
    *out = ClosureTierPolicy::kTraversal;
  } else {
    return false;
  }
  return true;
}

const char* ClosureTierPolicyName(ClosureTierPolicy policy) {
  switch (policy) {
    case ClosureTierPolicy::kAuto:
      return "auto";
    case ClosureTierPolicy::kMaterialized:
      return "materialized";
    case ClosureTierPolicy::kLabels:
      return "labels";
    case ClosureTierPolicy::kTraversal:
      return "traversal";
  }
  return "auto";
}

ClosureTierPolicy DefaultClosureTierPolicy() {
  static const ClosureTierPolicy policy = [] {
    ClosureTierPolicy p = ClosureTierPolicy::kAuto;
    const char* env = std::getenv("SOI_CLOSURE_TIER");
    if (env != nullptr && *env != '\0') ParseClosureTierPolicy(env, &p);
    return p;
  }();
  return policy;
}

void CascadeIndex::Workspace::Prepare(uint32_t num_components) {
  if (stamp_.size() < num_components) {
    stamp_.assign(num_components, 0);
    stamp_id_ = 0;
  }
  if (++stamp_id_ == 0) {  // stamp counter wrapped: hard reset
    std::fill(stamp_.begin(), stamp_.end(), 0);
    stamp_id_ = 1;
  }
  comps_.clear();
}

void CascadeIndex::ComputeSharedStats() {
  RunningStats comps, edges;
  uint64_t bytes = 0;
  for (const Condensation& c : worlds_) {
    comps.Add(c.num_components());
    edges.Add(c.num_dag_edges());
    bytes += CondensationApproxBytes(c);
  }
  stats_.avg_components = comps.mean();
  stats_.avg_dag_edges_after = edges.mean();
  stats_.approx_bytes = bytes;
}

void CascadeIndex::AccountCacheStats() {
  num_materialized_ = 0;
  num_labeled_ = 0;
  uint64_t closure_bytes = 0;
  uint64_t label_bytes = 0;
  for (size_t i = 0; i < tiers_.size(); ++i) {
    if (tiers_[i] == WorldTier::kMaterialized) {
      ++num_materialized_;
      closure_bytes += closures_[i].ApproxBytes();
    } else if (tiers_[i] == WorldTier::kLabels) {
      ++num_labeled_;
      label_bytes += labels_[i].ApproxBytes();
    }
  }
  stats_.closure_bytes = closure_bytes;
  stats_.label_bytes = label_bytes;
  stats_.approx_bytes += closure_bytes + label_bytes;
  stats_.worlds_materialized = num_materialized_;
  stats_.worlds_labeled = num_labeled_;
  stats_.worlds_traversal =
      num_worlds() - num_materialized_ - num_labeled_;
}

void CascadeIndex::BuildClosureCache(uint64_t budget_bytes,
                                     ClosureTierPolicy policy) {
  // Re-entrant: strip any previous cache contribution first.
  stats_.approx_bytes -= stats_.closure_bytes + stats_.label_bytes;
  stats_.closure_bytes = 0;
  stats_.label_bytes = 0;
  stats_.worlds_materialized = 0;
  stats_.worlds_labeled = 0;
  stats_.worlds_traversal = num_worlds();
  closures_.clear();
  labels_.clear();
  tiers_.assign(worlds_.size(), WorldTier::kTraversal);
  num_materialized_ = 0;
  num_labeled_ = 0;
  if (budget_bytes == 0 || policy == ClosureTierPolicy::kTraversal) {
    SOI_OBS_COUNTER_ADD("index/closure_cache_disabled", 1);
    return;
  }
  SOI_OBS_SPAN("index/build_closure_cache");
  const size_t n = worlds_.size();

  if (policy == ClosureTierPolicy::kMaterialized) {
    // Legacy all-or-nothing: materialize every world or retain nothing.
    std::vector<ReachabilityClosure> closures(n);
    // The kept/dropped outcome is thread-count independent: per-world
    // closures are deterministic, and `over` can only ever be set when the
    // true total exceeds the budget (any subset sum of a within-budget
    // total is within budget), in which case the cache is dropped no matter
    // which worlds were skipped after the flag went up.
    std::atomic<uint64_t> used{0};
    std::atomic<bool> over{false};
    ParallelFor(0, n, /*grain=*/1, [&](uint64_t i) {
      if (over.load(std::memory_order_relaxed)) return;
      ReachabilityClosure cl =
          BuildReachabilityClosure(worlds_[i], budget_bytes / 4);
      if (cl.num_components() != worlds_[i].num_components()) {
        over.store(true, std::memory_order_relaxed);
        return;
      }
      const uint64_t bytes = cl.ApproxBytes();
      if (used.fetch_add(bytes, std::memory_order_relaxed) + bytes >
          budget_bytes) {
        over.store(true, std::memory_order_relaxed);
        return;
      }
      closures[i] = std::move(cl);
    });
    if (over.load()) {
      SOI_OBS_COUNTER_ADD("index/closure_cache_skipped_budget", 1);
      return;
    }
    closures_ = std::move(closures);
    tiers_.assign(n, WorldTier::kMaterialized);
    AccountCacheStats();
    SOI_OBS_COUNTER_ADD("index/closure_cache_built", 1);
    return;
  }

  // kAuto / kLabels: three deterministic passes.
  //
  // Pass A (parallel): build every world's interval labels. The label build
  // also prices the materialized alternative exactly (ReachLabelStats), so
  // no closure has to be built just to be measured. The per-world interval
  // cap bounds pathological label growth to the budget.
  const bool allow_materialized = policy == ClosureTierPolicy::kAuto;
  const uint64_t max_intervals = std::max<uint64_t>(budget_bytes / 8, 1);
  std::vector<ReachLabels> labels(n);
  std::vector<ReachLabelStats> label_stats(n);
  ParallelForChunks(0, n, /*grain=*/1,
                    [&](uint32_t /*chunk*/, uint64_t b, uint64_t e) {
                      ReachLabelScratch scratch;
                      for (uint64_t i = b; i < e; ++i) {
                        labels[i] = BuildReachLabels(
                            worlds_[i], max_intervals, &scratch,
                            &label_stats[i]);
                      }
                    });

  // Pass B (sequential, world order): greedy tier assignment under the
  // budget — richest tier first. Sequential accounting over deterministic
  // per-world sizes makes the assignment thread-count independent.
  std::vector<ReachabilityClosure> closures(n);
  std::vector<uint8_t> materialize(n, 0);
  uint64_t used = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t nc1 = worlds_[i].num_components() + uint64_t{1};
    if (!labels[i].empty()) {
      // Exact byte cost BuildReachabilityClosure would incur (matches
      // ReachabilityClosure::ApproxBytes).
      const uint64_t mat_bytes =
          16 * nc1 + 4 * (label_stats[i].closure_comps +
                          label_stats[i].closure_nodes);
      const uint64_t lab_bytes = labels[i].ApproxBytes();
      if (allow_materialized && used + mat_bytes <= budget_bytes) {
        tiers_[i] = WorldTier::kMaterialized;
        materialize[i] = 1;
        used += mat_bytes;
        labels[i] = ReachLabels{};
      } else if (used + lab_bytes <= budget_bytes) {
        tiers_[i] = WorldTier::kLabels;
        used += lab_bytes;
      } else {
        labels[i] = ReachLabels{};  // traversal
      }
    } else if (allow_materialized) {
      // The interval cap blew up (pathologically fragmented DAG), so the
      // materialized cost is unknown; build the closure under the remaining
      // budget to find out. Rare, and sequential on purpose: the outcome
      // feeds the running budget.
      ReachabilityClosure cl =
          BuildReachabilityClosure(worlds_[i], (budget_bytes - used) / 4);
      if (cl.num_components() == worlds_[i].num_components() &&
          used + cl.ApproxBytes() <= budget_bytes) {
        used += cl.ApproxBytes();
        closures[i] = std::move(cl);
        tiers_[i] = WorldTier::kMaterialized;
      }
    }
  }

  // Pass C (parallel): materialize the assigned worlds. The cap cannot
  // trigger — pass B proved each world's node total fits the budget.
  ParallelFor(0, n, /*grain=*/1, [&](uint64_t i) {
    if (!materialize[i]) return;
    closures[i] = BuildReachabilityClosure(worlds_[i], budget_bytes / 4);
    SOI_DCHECK(closures[i].num_components() ==
               worlds_[i].num_components());
  });

  uint32_t n_mat = 0;
  uint32_t n_lab = 0;
  for (WorldTier t : tiers_) {
    n_mat += t == WorldTier::kMaterialized;
    n_lab += t == WorldTier::kLabels;
  }
  if (n_mat > 0) closures_ = std::move(closures);
  if (n_lab > 0) labels_ = std::move(labels);
  AccountCacheStats();
  if (has_closure_cache()) {
    SOI_OBS_COUNTER_ADD("index/closure_cache_built", 1);
  }
  SOI_OBS_COUNTER_ADD("index/worlds_materialized", n_mat);
  SOI_OBS_COUNTER_ADD("index/worlds_labeled", n_lab);
  SOI_OBS_COUNTER_ADD("index/worlds_traversal", n - n_mat - n_lab);
}

Result<CascadeIndex> CascadeIndex::Build(const ProbGraph& graph,
                                         const CascadeIndexOptions& options,
                                         Rng* rng) {
  if (options.num_worlds == 0) {
    return Status::InvalidArgument("CascadeIndex: num_worlds must be >= 1");
  }
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("CascadeIndex: empty graph");
  }
  WallTimer timer;
  SOI_OBS_SPAN("index/build");
  CascadeIndex index;
  index.num_nodes_ = graph.num_nodes();

  // Linear Threshold worlds share an amortized sampler (validates weights
  // and precomputes cumulative in-weights once).
  std::optional<LtWorldSampler> lt_sampler;
  if (options.model == PropagationModel::kLinearThreshold) {
    SOI_ASSIGN_OR_RETURN(lt_sampler, LtWorldSampler::Create(graph));
  }

  // World i samples from its own stream, so the built index is identical
  // for every thread count; the master rng advances exactly once per Build,
  // so consecutive Builds from one rng still get fresh worlds.
  const Rng streams = rng->Fork();
  struct WorldStats {
    uint32_t edges_before = 0;
    uint32_t edges_after = 0;
  };
  std::vector<Condensation> worlds(options.num_worlds);
  std::vector<WorldStats> world_stats(options.num_worlds);
  // Chunked so each worker threads ONE bump arena through its worlds: the
  // SCC scratch costs O(1) heap allocations per chunk instead of five per
  // world. Per-world results are slot writes, so the chunking (like the
  // thread count) cannot change the built index.
  ParallelForChunks(
      0, options.num_worlds, /*grain=*/1,
      [&](uint32_t /*chunk*/, uint64_t b, uint64_t e) {
        BumpArena scratch;
        for (uint64_t i = b; i < e; ++i) {
          scratch.Reset();
          Rng world_rng = streams.Fork(i);
          std::optional<Csr> world;
          {
            SOI_OBS_SPAN("index/sample_world");
            world.emplace(lt_sampler.has_value()
                              ? lt_sampler->Sample(&world_rng)
                              : SampleWorld(graph, &world_rng));
          }
          std::optional<Condensation> cond;
          {
            SOI_OBS_SPAN("index/scc_condense");
            cond.emplace(Condensation::Build(*world, &scratch));
          }
          uint32_t before = cond->num_dag_edges();
          uint32_t after = before;
          if (options.transitive_reduction) {
            SOI_OBS_SPAN("index/transitive_reduce");
            const ReductionStats rstats =
                TransitiveReduce(&*cond, options.reduction);
            before = rstats.edges_before;
            after = rstats.edges_after;
          }
          world_stats[i] = {before, after};
          worlds[i] = std::move(*cond);
        }
      });
  SOI_OBS_COUNTER_ADD("index/worlds_built", options.num_worlds);

  // Ordered reduction: accumulate floating-point stats in world order.
  RunningStats edges_before;
  uint64_t edges_removed = 0;
  for (uint32_t i = 0; i < options.num_worlds; ++i) {
    edges_before.Add(world_stats[i].edges_before);
    edges_removed += world_stats[i].edges_before - world_stats[i].edges_after;
  }
  SOI_OBS_COUNTER_ADD("index/dag_edges_removed", edges_removed);
  index.worlds_ = std::move(worlds);
  index.tiers_.assign(index.worlds_.size(), WorldTier::kTraversal);
  index.ComputeSharedStats();
  index.stats_.avg_dag_edges_before = edges_before.mean();
  index.BuildClosureCache(options.closure_budget_mb << 20,
                          options.tier_policy);
  index.stats_.build_seconds = timer.ElapsedSeconds();
  return index;
}

Result<CascadeIndex> CascadeIndex::FromWorlds(NodeId num_nodes,
                                              std::vector<Condensation> worlds,
                                              uint64_t closure_budget_mb,
                                              RebuildClosures rebuild,
                                              ClosureTierPolicy tier_policy) {
  if (num_nodes == 0) return Status::InvalidArgument("empty node set");
  if (worlds.empty()) return Status::InvalidArgument("no worlds");
  for (const Condensation& c : worlds) {
    if (c.num_nodes() != num_nodes) {
      return Status::InvalidArgument("condensation node count mismatch");
    }
  }
  CascadeIndex index;
  index.num_nodes_ = num_nodes;
  index.worlds_ = std::move(worlds);
  index.tiers_.assign(index.worlds_.size(), WorldTier::kTraversal);
  index.ComputeSharedStats();
  // The serialized form stores only the (already reduced) DAG, so the
  // pre-reduction edge count is unrecoverable here; report the stored count
  // for both so load-side stats stay self-consistent.
  index.stats_.avg_dag_edges_before = index.stats_.avg_dag_edges_after;
  if (rebuild == RebuildClosures::kRebuild) {
    index.BuildClosureCache(closure_budget_mb << 20, tier_policy);
  }
  return index;
}

Result<CascadeIndex> CascadeIndex::FromParts(
    NodeId num_nodes, std::vector<Condensation> worlds,
    std::vector<ReachabilityClosure> closures, std::vector<ReachLabels> labels,
    std::vector<WorldTier> tiers) {
  const size_t n = worlds.size();
  if (tiers.empty()) {
    // Legacy two-state contract: closures empty (all traversal) or full
    // (all materialized); labels are a tiered-mode concept.
    if (!labels.empty()) {
      return Status::InvalidArgument(
          "labels require an explicit tier assignment");
    }
    if (!closures.empty() && closures.size() != n) {
      return Status::InvalidArgument(
          "closure count (" + std::to_string(closures.size()) +
          ") does not match world count (" + std::to_string(n) + ")");
    }
    tiers.assign(n, closures.empty() ? WorldTier::kTraversal
                                     : WorldTier::kMaterialized);
  } else {
    if (tiers.size() != n) {
      return Status::InvalidArgument(
          "tier count (" + std::to_string(tiers.size()) +
          ") does not match world count (" + std::to_string(n) + ")");
    }
    if (closures.empty()) {
      closures.resize(n);
    } else if (closures.size() != n) {
      return Status::InvalidArgument("closure count does not match worlds");
    }
    if (labels.empty()) {
      labels.resize(n);
    } else if (labels.size() != n) {
      return Status::InvalidArgument("label count does not match worlds");
    }
  }
  uint32_t n_mat = 0;
  uint32_t n_lab = 0;
  for (size_t i = 0; i < n; ++i) {
    if (tiers[i] == WorldTier::kMaterialized) {
      ++n_mat;
      if (closures[i].num_components() != worlds[i].num_components()) {
        return Status::InvalidArgument(
            "closure component count mismatch in world " + std::to_string(i));
      }
    } else if (tiers[i] == WorldTier::kLabels) {
      ++n_lab;
      if (labels[i].num_components() != worlds[i].num_components()) {
        return Status::InvalidArgument(
            "label component count mismatch in world " + std::to_string(i));
      }
    }
  }
  SOI_ASSIGN_OR_RETURN(
      CascadeIndex index,
      FromWorlds(num_nodes, std::move(worlds), /*closure_budget_mb=*/0,
                 RebuildClosures::kSkip));
  index.tiers_ = std::move(tiers);
  if (n_mat > 0) index.closures_ = std::move(closures);
  if (n_lab > 0) index.labels_ = std::move(labels);
  index.AccountCacheStats();
  return index;
}

void CascadeIndex::ReplaceWorld(uint32_t i, Condensation cond) {
  SOI_CHECK(i < worlds_.size());
  SOI_CHECK(!cond.borrowed());
  SOI_CHECK(cond.num_nodes() == num_nodes_);
  worlds_[i] = std::move(cond);
}

void CascadeIndex::SetClosure(uint32_t i, ReachabilityClosure closure) {
  SOI_CHECK(has_closure_cache());
  SOI_CHECK(i < closures_.size());
  SOI_CHECK(closure.num_components() == worlds_[i].num_components());
  closures_[i] = std::move(closure);
}

void CascadeIndex::DropClosureCache() {
  closures_.clear();
  labels_.clear();
  tiers_.assign(worlds_.size(), WorldTier::kTraversal);
  num_materialized_ = 0;
  num_labeled_ = 0;
  SOI_OBS_COUNTER_ADD("index/closure_cache_dropped", 1);
}

void CascadeIndex::RebuildClosureTiers(uint64_t budget_mb,
                                       ClosureTierPolicy policy) {
  BuildClosureCache(budget_mb << 20, policy);
}

void CascadeIndex::RebuildClosureTiersBytes(uint64_t budget_bytes,
                                            ClosureTierPolicy policy) {
  BuildClosureCache(budget_bytes, policy);
}

void CascadeIndex::RecomputeStats() {
  const double build_seconds = stats_.build_seconds;
  stats_ = CascadeIndexStats{};
  stats_.build_seconds = build_seconds;
  ComputeSharedStats();
  stats_.avg_dag_edges_before = stats_.avg_dag_edges_after;
  AccountCacheStats();
}

Status CascadeIndex::ValidateSeeds(std::span<const NodeId> seeds) const {
  SOI_RETURN_IF_ERROR(ValidateSeedSet(seeds, num_nodes_));
  return Status::OK();
}

Status CascadeIndex::ValidateWorld(uint32_t i) const {
  if (i >= num_worlds()) {
    return Status::InvalidArgument(
        "world index " + std::to_string(i) + " is out of range; index has " +
        std::to_string(num_worlds()) + " worlds (valid: 0.." +
        std::to_string(num_worlds() - 1) + ")");
  }
  return Status::OK();
}

void CascadeIndex::CascadeInto(std::span<const NodeId> seeds, uint32_t i,
                               Workspace* ws, std::vector<NodeId>* out) const {
  // Precondition (debug-checked): seeds/world validated by the caller.
  const Condensation& cond = world(i);
  if (tiers_[i] == WorldTier::kMaterialized) {
    const ReachabilityClosure& cl = closures_[i];
    if (seeds.size() == 1) {
      SOI_DCHECK(seeds[0] < num_nodes_);
      const auto run = cl.Cascade(cond.ComponentOf(seeds[0]));
      out->insert(out->end(), run.begin(), run.end());
      return;
    }
    ws->Prepare(cond.num_components());
    for (NodeId s : seeds) {
      SOI_DCHECK(s < num_nodes_);
      for (uint32_t x : cl.Closure(cond.ComponentOf(s))) {
        if (ws->stamp_[x] != ws->stamp_id_) {
          ws->stamp_[x] = ws->stamp_id_;
          ws->comps_.push_back(x);
        }
      }
    }
    std::sort(ws->comps_.begin(), ws->comps_.end());
    MergeComponentMemberRuns(cond, ws->comps_, &ws->merge_, out);
    return;
  }
  if (tiers_[i] == WorldTier::kLabels) {
    // Expanding the intervals streams closure component ids; the member-run
    // merge then produces the exact cascade run the materialized tier would
    // have returned from storage.
    const ReachLabels& lab = labels_[i];
    ws->Prepare(cond.num_components());
    if (seeds.size() == 1) {
      SOI_DCHECK(seeds[0] < num_nodes_);
      lab.AppendClosure(cond.ComponentOf(seeds[0]), &ws->comps_);
      MergeComponentMemberRuns(cond, ws->comps_, &ws->merge_, out);
      return;
    }
    for (NodeId s : seeds) {
      SOI_DCHECK(s < num_nodes_);
      const auto b = lab.Bounds(cond.ComponentOf(s));
      for (size_t k = 0; k < b.size(); k += 2) {
        for (uint32_t x = b[k]; x <= b[k + 1]; ++x) {
          if (ws->stamp_[x] != ws->stamp_id_) {
            ws->stamp_[x] = ws->stamp_id_;
            ws->comps_.push_back(x);
          }
        }
      }
    }
    std::sort(ws->comps_.begin(), ws->comps_.end());
    MergeComponentMemberRuns(cond, ws->comps_, &ws->merge_, out);
    return;
  }
  // Traversal fallback: DFS over the condensation DAG, gather, sort.
  ws->Prepare(cond.num_components());
  for (NodeId s : seeds) {
    SOI_DCHECK(s < num_nodes_);
    ReachableComponents(cond, cond.ComponentOf(s), &ws->stamp_, ws->stamp_id_,
                        &ws->comps_);
  }
  const size_t base = out->size();
  for (uint32_t c : ws->comps_) {
    const auto members = cond.ComponentMembers(c);
    out->insert(out->end(), members.begin(), members.end());
  }
  std::sort(out->begin() + base, out->end());
}

Result<std::vector<NodeId>> CascadeIndex::Cascade(std::span<const NodeId> seeds,
                                                  uint32_t i,
                                                  Workspace* ws) const {
  SOI_RETURN_IF_ERROR(ValidateSeeds(seeds));
  SOI_RETURN_IF_ERROR(ValidateWorld(i));
  std::vector<NodeId> out;
  CascadeInto(seeds, i, ws, &out);
  return out;
}

void CascadeIndex::AppendCascade(std::span<const NodeId> seeds, uint32_t i,
                                 Workspace* ws, CascadeArena* arena) const {
  CascadeInto(seeds, i, ws, &arena->sets_.MutableElements());
  arena->sets_.SealSet();
}

Result<uint64_t> CascadeIndex::CascadeSize(std::span<const NodeId> seeds,
                                           uint32_t i, Workspace* ws) const {
  SOI_RETURN_IF_ERROR(ValidateSeeds(seeds));
  SOI_RETURN_IF_ERROR(ValidateWorld(i));
  const Condensation& cond = world(i);
  if (tiers_[i] == WorldTier::kMaterialized) {
    const ReachabilityClosure& cl = closures_[i];
    if (seeds.size() == 1) {
      return cl.NodeCount(cond.ComponentOf(seeds[0]));
    }
    ws->Prepare(cond.num_components());
    uint64_t total = 0;
    for (NodeId s : seeds) {
      for (uint32_t x : cl.Closure(cond.ComponentOf(s))) {
        if (ws->stamp_[x] != ws->stamp_id_) {
          ws->stamp_[x] = ws->stamp_id_;
          total += cond.ComponentSize(x);
        }
      }
    }
    return total;
  }
  if (tiers_[i] == WorldTier::kLabels) {
    const ReachLabels& lab = labels_[i];
    if (seeds.size() == 1) {
      return lab.NodeCount(cond.ComponentOf(seeds[0]));  // O(1)
    }
    ws->Prepare(cond.num_components());
    uint64_t total = 0;
    for (NodeId s : seeds) {
      const auto b = lab.Bounds(cond.ComponentOf(s));
      for (size_t k = 0; k < b.size(); k += 2) {
        for (uint32_t x = b[k]; x <= b[k + 1]; ++x) {
          if (ws->stamp_[x] != ws->stamp_id_) {
            ws->stamp_[x] = ws->stamp_id_;
            total += cond.ComponentSize(x);
          }
        }
      }
    }
    return total;
  }
  ws->Prepare(cond.num_components());
  for (NodeId s : seeds) {
    ReachableComponents(cond, cond.ComponentOf(s), &ws->stamp_, ws->stamp_id_,
                        &ws->comps_);
  }
  uint64_t total = 0;
  for (uint32_t c : ws->comps_) total += cond.ComponentSize(c);
  return total;
}

Result<std::vector<std::vector<NodeId>>> CascadeIndex::AllCascades(
    std::span<const NodeId> seeds, Workspace* ws) const {
  SOI_RETURN_IF_ERROR(ValidateSeeds(seeds));
  std::vector<std::vector<NodeId>> out;
  out.reserve(num_worlds());
  for (uint32_t i = 0; i < num_worlds(); ++i) {
    std::vector<NodeId> cascade;
    CascadeInto(seeds, i, ws, &cascade);
    out.push_back(std::move(cascade));
  }
  return out;
}

Status CascadeIndex::AllCascadesInto(std::span<const NodeId> seeds,
                                     Workspace* ws,
                                     CascadeArena* arena) const {
  arena->Clear();
  SOI_RETURN_IF_ERROR(ValidateSeeds(seeds));
  for (uint32_t i = 0; i < num_worlds(); ++i) {
    AppendCascade(seeds, i, ws, arena);
  }
  return Status::OK();
}

}  // namespace soi
