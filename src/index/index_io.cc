#include "index/index_io.h"

#include <cstring>
#include <fstream>
#include <sstream>

namespace soi {

namespace {

constexpr char kMagic[8] = {'S', 'O', 'I', 'I', 'D', 'X', '\0', '\0'};
constexpr uint32_t kVersion = 1;

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

uint64_t Fnv1a(const char* data, size_t size) {
  uint64_t hash = 1469598103934665603ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ull;
  }
  return hash;
}

// Bounds-checked little-endian reader.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  Result<uint32_t> U32() {
    if (pos_ + 4 > size_) return Truncated();
    uint32_t v;
    std::memcpy(&v, data_ + pos_, 4);
    pos_ += 4;
    return v;
  }

  Result<uint64_t> U64() {
    if (pos_ + 8 > size_) return Truncated().status();
    uint64_t v;
    std::memcpy(&v, data_ + pos_, 8);
    pos_ += 8;
    return v;
  }

  Status ReadU32Array(size_t count, std::vector<uint32_t>* out) {
    if (pos_ + 4 * count > size_) return Truncated().status();
    out->resize(count);
    std::memcpy(out->data(), data_ + pos_, 4 * count);
    pos_ += 4 * count;
    return Status::OK();
  }

  size_t pos() const { return pos_; }

 private:
  static Result<uint32_t> Truncated() {
    return Status::IOError("truncated index payload");
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

std::string SerializeCascadeIndex(const CascadeIndex& index) {
  std::string out(kMagic, sizeof(kMagic));
  AppendU32(&out, kVersion);
  AppendU32(&out, index.num_nodes());
  AppendU32(&out, index.num_worlds());
  for (uint32_t i = 0; i < index.num_worlds(); ++i) {
    const Condensation& cond = index.world(i);
    AppendU32(&out, cond.num_components());
    for (uint32_t c : cond.comp_of()) AppendU32(&out, c);
    // Span accessors so borrowed (snapshot-backed) indexes serialize too.
    AppendU32(&out, cond.num_dag_edges());
    for (uint32_t off : cond.dag_offsets()) AppendU32(&out, off);
    for (NodeId t : cond.dag_targets()) AppendU32(&out, t);
  }
  AppendU64(&out, Fnv1a(out.data() + sizeof(kMagic),
                        out.size() - sizeof(kMagic)));
  return out;
}

Result<CascadeIndex> DeserializeCascadeIndex(const std::string& bytes,
                                             RebuildClosures rebuild) {
  if (bytes.size() < sizeof(kMagic) + 12 + 8 ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError("not a soi cascade index");
  }
  // Verify trailing checksum first.
  const size_t body_end = bytes.size() - 8;
  uint64_t stored_checksum;
  std::memcpy(&stored_checksum, bytes.data() + body_end, 8);
  const uint64_t computed = Fnv1a(bytes.data() + sizeof(kMagic),
                                  body_end - sizeof(kMagic));
  if (stored_checksum != computed) {
    return Status::IOError("index checksum mismatch (corrupt file?)");
  }

  Reader reader(bytes.data() + sizeof(kMagic), body_end - sizeof(kMagic));
  SOI_ASSIGN_OR_RETURN(const uint32_t version, reader.U32());
  if (version != kVersion) {
    return Status::IOError("unsupported index version " +
                           std::to_string(version));
  }
  SOI_ASSIGN_OR_RETURN(const uint32_t num_nodes, reader.U32());
  SOI_ASSIGN_OR_RETURN(const uint32_t num_worlds, reader.U32());
  if (num_worlds == 0 || num_nodes == 0) {
    return Status::IOError("index with no nodes or worlds");
  }

  std::vector<Condensation> worlds;
  worlds.reserve(num_worlds);
  for (uint32_t i = 0; i < num_worlds; ++i) {
    SOI_ASSIGN_OR_RETURN(const uint32_t num_components, reader.U32());
    std::vector<uint32_t> comp_of;
    SOI_RETURN_IF_ERROR(reader.ReadU32Array(num_nodes, &comp_of));
    SOI_ASSIGN_OR_RETURN(const uint32_t num_dag_edges, reader.U32());
    Csr dag;
    SOI_RETURN_IF_ERROR(
        reader.ReadU32Array(num_components + 1, &dag.offsets));
    SOI_RETURN_IF_ERROR(reader.ReadU32Array(num_dag_edges, &dag.targets));
    if (!dag.offsets.empty() && dag.offsets.back() != num_dag_edges) {
      return Status::IOError("inconsistent DAG offsets");
    }
    SOI_ASSIGN_OR_RETURN(
        Condensation cond,
        Condensation::FromParts(std::move(comp_of), num_components,
                                std::move(dag)));
    worlds.push_back(std::move(cond));
  }
  return CascadeIndex::FromWorlds(num_nodes, std::move(worlds),
                                  DefaultClosureBudgetMb(), rebuild);
}

Status SaveCascadeIndex(const CascadeIndex& index, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  const std::string bytes = SerializeCascadeIndex(index);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<CascadeIndex> LoadCascadeIndex(const std::string& path,
                                      RebuildClosures rebuild) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return DeserializeCascadeIndex(buf.str(), rebuild);
}

}  // namespace soi
