#include "jaccard/jaccard.h"

#include <algorithm>

#include "util/check.h"

namespace soi {

size_t IntersectionSize(std::span<const NodeId> a, std::span<const NodeId> b) {
  size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

double JaccardSimilarity(std::span<const NodeId> a, std::span<const NodeId> b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t inter = IntersectionSize(a, b);
  const size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double JaccardDistance(std::span<const NodeId> a, std::span<const NodeId> b) {
  return 1.0 - JaccardSimilarity(a, b);
}

double AverageJaccardDistance(std::span<const NodeId> candidate,
                              const std::vector<std::vector<NodeId>>& sets,
                              NodeId universe) {
  SOI_CHECK(!sets.empty());
  std::vector<uint8_t> in_candidate(universe, 0);
  for (NodeId v : candidate) {
    SOI_CHECK(v < universe);
    in_candidate[v] = 1;
  }
  double total = 0.0;
  for (const auto& s : sets) {
    size_t inter = 0;
    for (NodeId v : s) inter += in_candidate[v];
    const size_t uni = candidate.size() + s.size() - inter;
    if (uni == 0) continue;  // both empty: distance 0
    total += 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
  }
  return total / static_cast<double>(sets.size());
}

}  // namespace soi
