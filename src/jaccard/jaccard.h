#ifndef SOI_JACCARD_JACCARD_H_
#define SOI_JACCARD_JACCARD_H_

#include <span>
#include <vector>

#include "graph/prob_graph.h"

namespace soi {

/// Jaccard distance d_J(A, B) = 1 - |A∩B| / |A∪B| over sorted node sets
/// (paper §2.2). A metric on finite sets; d_J(∅, ∅) is defined as 0 and
/// d_J(∅, B) = 1 for nonempty B.
double JaccardDistance(std::span<const NodeId> a, std::span<const NodeId> b);

/// Jaccard similarity |A∩B| / |A∪B| (1 for two empty sets).
double JaccardSimilarity(std::span<const NodeId> a, std::span<const NodeId> b);

/// |A∩B| for sorted sets.
size_t IntersectionSize(std::span<const NodeId> a, std::span<const NodeId> b);

/// Average Jaccard distance from `candidate` to every set in `sets`
/// (the empirical cost rho-bar of a candidate median). O(|C| + sum |S_i|)
/// using a scratch mark array of size `universe` (pass num_nodes()).
double AverageJaccardDistance(std::span<const NodeId> candidate,
                              const std::vector<std::vector<NodeId>>& sets,
                              NodeId universe);

}  // namespace soi

#endif  // SOI_JACCARD_JACCARD_H_
