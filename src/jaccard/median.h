#ifndef SOI_JACCARD_MEDIAN_H_
#define SOI_JACCARD_MEDIAN_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/prob_graph.h"
#include "util/status.h"

namespace soi {

/// Options for the approximate Jaccard-median solver.
struct MedianOptions {
  /// Also evaluate up to this many of the input sets as candidate medians
  /// (stride-sampled deterministically); 0 disables. Chierichetti et al.'s
  /// practical algorithm takes the best of frequency-threshold sets and
  /// input sets.
  uint32_t input_candidates = 8;
  /// Run 1-element toggle local search after the sweep. Each pass costs
  /// O(#distinct-elements * #sets); worthwhile for single queries, usually
  /// disabled in whole-graph sweeps.
  bool local_search = false;
  uint32_t local_search_passes = 2;
  /// Skip per-element input validation (strictly ascending, < universe).
  /// Only for callers whose sets are sorted by construction — e.g. cascades
  /// out of the index, which emits ascending node lists. Malformed input
  /// under this flag yields undefined results, not an error.
  bool trusted_presorted = false;
};

/// Output of the solver.
struct MedianResult {
  /// The approximate median, sorted ascending.
  std::vector<NodeId> median;
  /// Its empirical cost: average Jaccard distance to the input sets.
  /// (An *in-sample* quantity; estimate generalization cost on held-out
  /// samples, see core/typical_cascade.h.)
  double cost = 0.0;
  /// The frequency threshold of the winning candidate (elements appearing in
  /// >= threshold inputs), or 0 when an input set / local search won.
  uint32_t threshold = 0;
  /// Which candidate family won (for ablation reporting).
  enum class Source { kThreshold, kInputSet, kLocalSearch } source =
      Source::kThreshold;
};

/// Approximate Jaccard median (Problem 2, paper §2.2/§4): given sets
/// S_1..S_l over [0, universe), find C minimizing the average Jaccard
/// distance. NP-hard in general (Chierichetti et al., SODA 2010); this
/// implements their practical 1+O(eps) approach: sweep all frequency
/// thresholds with incremental cost maintenance, optionally compare against
/// input-set candidates and refine by local search.
///
/// The solver owns O(universe) scratch arrays, so construct once and reuse
/// across queries (e.g. for the all-nodes sweep of Algorithm 2).
class JaccardMedianSolver {
 public:
  explicit JaccardMedianSolver(NodeId universe);

  /// Computes the approximate median. Empty input collection is invalid;
  /// empty member sets are fine (the all-empty collection has median {}).
  /// The span-of-spans overload is the allocation-free core (pairs with
  /// CascadeArena::Views() in sweep loops); the vector overload wraps it.
  Result<MedianResult> Compute(std::span<const std::span<const NodeId>> sets,
                               const MedianOptions& options = {});
  Result<MedianResult> Compute(const std::vector<std::vector<NodeId>>& sets,
                               const MedianOptions& options = {});

  NodeId universe() const { return universe_; }

 private:
  struct Sweep;

  NodeId universe_;
  // Scratch, sized universe_, stamped for O(1) logical reset.
  std::vector<uint32_t> slot_of_;     // element -> distinct-slot index
  std::vector<uint32_t> slot_stamp_;  // stamp guard for slot_of_
  std::vector<uint8_t> mark_;        // generic membership scratch
  std::vector<NodeId> marked_;       // touched entries of mark_
  uint32_t stamp_ = 0;
};

/// Exact optimal median by enumerating all subsets of the union of the
/// inputs (test oracle; the union may have at most 20 elements).
Result<std::pair<std::vector<NodeId>, double>> ExactJaccardMedian(
    const std::vector<std::vector<NodeId>>& sets);

}  // namespace soi

#endif  // SOI_JACCARD_MEDIAN_H_
