#include "jaccard/median.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "obs/metrics.h"
#include "util/check.h"

namespace soi {

namespace {

// Cost contribution of one set with intersection `inter`, candidate size `c`,
// set size `s`: the Jaccard distance 1 - inter / (c + s - inter).
inline double Term(uint32_t inter, size_t c, size_t s) {
  const size_t uni = c + s - inter;
  if (uni == 0) return 0.0;  // both empty
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

Status ValidateSets(std::span<const std::span<const NodeId>> sets,
                    NodeId universe) {
  for (const auto& s : sets) {
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i] >= universe) {
        return Status::OutOfRange("set element exceeds universe");
      }
      if (i > 0 && s[i] <= s[i - 1]) {
        return Status::InvalidArgument(
            "input sets must be sorted strictly ascending");
      }
    }
  }
  return Status::OK();
}

}  // namespace

JaccardMedianSolver::JaccardMedianSolver(NodeId universe)
    : universe_(universe),
      slot_of_(universe, 0),
      slot_stamp_(universe, 0),
      mark_(universe, 0) {}

Result<MedianResult> JaccardMedianSolver::Compute(
    std::span<const std::span<const NodeId>> sets,
    const MedianOptions& options) {
  if (sets.empty()) {
    return Status::InvalidArgument("median of an empty collection");
  }
  if (!options.trusted_presorted) {
    SOI_RETURN_IF_ERROR(ValidateSets(sets, universe_));
  }
  SOI_OBS_SPAN("median/compute");
  SOI_OBS_COUNTER_ADD("median/input_sets", sets.size());
  const uint32_t num_sets = static_cast<uint32_t>(sets.size());

  // --- Collect distinct elements and frequencies. ---------------------------
  ++stamp_;
  std::vector<NodeId> distinct;        // slot -> element
  std::vector<uint32_t> freq;          // slot -> #sets containing element
  size_t total_occurrences = 0;
  for (const auto& s : sets) {
    total_occurrences += s.size();
    for (NodeId x : s) {
      if (slot_stamp_[x] != stamp_) {
        slot_stamp_[x] = stamp_;
        slot_of_[x] = static_cast<uint32_t>(distinct.size());
        distinct.push_back(x);
        freq.push_back(1);
      } else {
        ++freq[slot_of_[x]];
      }
    }
  }

  // --- Inverted index: slot -> ids of sets containing the element. ----------
  std::vector<uint32_t> inv_offsets(distinct.size() + 1, 0);
  for (size_t slot = 0; slot < distinct.size(); ++slot) {
    inv_offsets[slot + 1] = inv_offsets[slot] + freq[slot];
  }
  std::vector<uint32_t> inv(total_occurrences);
  {
    std::vector<uint32_t> cursor(inv_offsets.begin(), inv_offsets.end() - 1);
    for (uint32_t i = 0; i < num_sets; ++i) {
      for (NodeId x : sets[i]) inv[cursor[slot_of_[x]]++] = i;
    }
  }
  auto sets_containing = [&](uint32_t slot) {
    return std::span<const uint32_t>(inv.data() + inv_offsets[slot],
                                     inv.data() + inv_offsets[slot + 1]);
  };

  // --- Threshold sweep (frequency-descending prefix candidates). ------------
  std::vector<uint32_t> order(distinct.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return freq[a] != freq[b] ? freq[a] > freq[b]
                              : distinct[a] < distinct[b];
  });

  std::vector<uint32_t> inter(num_sets, 0);
  size_t cand_size = 0;

  auto full_cost = [&](size_t c) {
    double total = 0.0;
    for (uint32_t i = 0; i < num_sets; ++i) {
      total += Term(inter[i], c, sets[i].size());
    }
    return total / num_sets;
  };

  // The empty candidate is the degenerate threshold "> num_sets".
  double best_cost = full_cost(0);
  size_t best_prefix = 0;
  uint32_t best_threshold = num_sets + 1;

  size_t pos = 0;
  while (pos < order.size()) {
    const uint32_t t = freq[order[pos]];
    // Add the whole equal-frequency group before evaluating.
    while (pos < order.size() && freq[order[pos]] == t) {
      for (uint32_t i : sets_containing(order[pos])) ++inter[i];
      ++cand_size;
      ++pos;
    }
    const double cost = full_cost(cand_size);
    if (cost < best_cost - 1e-15) {
      best_cost = cost;
      best_prefix = pos;
      best_threshold = t;
    }
  }

  MedianResult result;
  result.median.reserve(best_prefix);
  for (size_t i = 0; i < best_prefix; ++i) {
    result.median.push_back(distinct[order[i]]);
  }
  std::sort(result.median.begin(), result.median.end());
  result.cost = best_cost;
  result.threshold = best_threshold <= num_sets ? best_threshold : 0;
  result.source = MedianResult::Source::kThreshold;

  // --- Input-set candidates (stride-sampled, deterministic). -----------------
  if (options.input_candidates > 0) {
    SOI_OBS_SPAN("median/input_candidates");
    const uint32_t k = std::min<uint32_t>(options.input_candidates, num_sets);
    // Candidates are evaluated in groups of up to 8, one bit of mark_ each,
    // so a single pass over the sets accumulates every intersection count at
    // once: kSpread maps bit b of the mark byte to byte b of a packed
    // uint64 accumulator, flushed to 32-bit counters before any lane
    // saturates. Counts (and hence costs, summed in the same set order) are
    // identical to evaluating each candidate on its own pass.
    static constexpr std::array<uint64_t, 256> kSpread = [] {
      std::array<uint64_t, 256> t{};
      for (uint32_t m = 0; m < 256; ++m) {
        for (uint32_t b = 0; b < 8; ++b) {
          if (m & (1u << b)) t[m] |= uint64_t{1} << (8 * b);
        }
      }
      return t;
    }();
    const auto candidate_index = [&](uint32_t j) {
      return static_cast<uint32_t>(static_cast<uint64_t>(j) * num_sets / k);
    };
    std::vector<uint32_t> batch_inter(static_cast<size_t>(num_sets) * 8);
    for (uint32_t group = 0; group < k; group += 8) {
      const uint32_t gk = std::min<uint32_t>(8, k - group);
      for (uint32_t b = 0; b < gk; ++b) {
        for (NodeId v : sets[candidate_index(group + b)]) {
          mark_[v] |= static_cast<uint8_t>(1u << b);
        }
      }
      std::fill(batch_inter.begin(), batch_inter.end(), 0);
      for (uint32_t i = 0; i < num_sets; ++i) {
        uint32_t* row = batch_inter.data() + static_cast<size_t>(i) * 8;
        uint64_t acc = 0;
        uint32_t pending = 0;
        const auto flush = [&] {
          for (uint32_t b = 0; b < 8; ++b) {
            row[b] += static_cast<uint32_t>((acc >> (8 * b)) & 0xFF);
          }
          acc = 0;
          pending = 0;
        };
        for (NodeId v : sets[i]) {
          acc += kSpread[mark_[v]];
          if (++pending == 255) flush();
        }
        if (pending > 0) flush();
      }
      for (uint32_t b = 0; b < gk; ++b) {
        const uint32_t idx = candidate_index(group + b);
        double total = 0.0;
        for (uint32_t i = 0; i < num_sets; ++i) {
          total += Term(batch_inter[static_cast<size_t>(i) * 8 + b],
                        sets[idx].size(), sets[i].size());
        }
        const double cost = total / num_sets;
        if (cost < result.cost - 1e-15) {
          result.cost = cost;
          result.median.assign(sets[idx].begin(), sets[idx].end());
          result.threshold = 0;
          result.source = MedianResult::Source::kInputSet;
        }
      }
      for (uint32_t b = 0; b < gk; ++b) {
        for (NodeId v : sets[candidate_index(group + b)]) mark_[v] = 0;
      }
    }
  }

  // --- Local search: 1-element toggles. --------------------------------------
  if (options.local_search && !distinct.empty()) {
    SOI_OBS_SPAN("median/local_search");
    // Rebuild intersection counts for the current best candidate.
    std::fill(inter.begin(), inter.end(), 0);
    for (NodeId x : result.median) mark_[x] = 1;
    for (uint32_t i = 0; i < num_sets; ++i) {
      uint32_t cnt = 0;
      for (NodeId x : sets[i]) cnt += mark_[x];
      inter[i] = cnt;
    }
    cand_size = result.median.size();
    double cur_cost = result.cost;
    bool changed = false;

    // Counters are accumulated locally and flushed once after the search:
    // toggles happen inside the innermost loop, where even a relaxed
    // fetch_add per event would be measurable.
    uint64_t toggles = 0;
    uint64_t passes = 0;
    for (uint32_t pass = 0; pass < options.local_search_passes; ++pass) {
      bool improved = false;
      for (uint32_t slot_idx = 0; slot_idx < order.size(); ++slot_idx) {
        const uint32_t slot = order[slot_idx];
        const NodeId x = distinct[slot];
        const bool inside = mark_[x] != 0;
        const size_t new_c = inside ? cand_size - 1 : cand_size + 1;
        // Base: all sets at unchanged intersection but new candidate size.
        double new_total = 0.0;
        for (uint32_t i = 0; i < num_sets; ++i) {
          new_total += Term(inter[i], new_c, sets[i].size());
        }
        // Adjust the sets that contain x.
        const int delta = inside ? -1 : +1;
        for (uint32_t i : sets_containing(slot)) {
          new_total -= Term(inter[i], new_c, sets[i].size());
          new_total += Term(inter[i] + delta, new_c, sets[i].size());
        }
        const double new_cost = new_total / num_sets;
        if (new_cost < cur_cost - 1e-12) {
          cur_cost = new_cost;
          cand_size = new_c;
          mark_[x] = inside ? 0 : 1;
          for (uint32_t i : sets_containing(slot)) {
            inter[i] += delta;
          }
          improved = true;
          changed = true;
          ++toggles;
        }
      }
      ++passes;
      if (!improved) break;
    }
    SOI_OBS_COUNTER_ADD("median/local_search_toggles", toggles);
    SOI_OBS_COUNTER_ADD("median/local_search_passes", passes);

    if (changed) {
      result.median.clear();
      for (NodeId x : distinct) {
        if (mark_[x]) result.median.push_back(x);
      }
      std::sort(result.median.begin(), result.median.end());
      result.cost = cur_cost;
      result.threshold = 0;
      result.source = MedianResult::Source::kLocalSearch;
    }
    for (NodeId x : distinct) mark_[x] = 0;
  }

  return result;
}

Result<MedianResult> JaccardMedianSolver::Compute(
    const std::vector<std::vector<NodeId>>& sets,
    const MedianOptions& options) {
  std::vector<std::span<const NodeId>> views;
  views.reserve(sets.size());
  for (const auto& s : sets) views.emplace_back(s.data(), s.size());
  return Compute(std::span<const std::span<const NodeId>>(views), options);
}

Result<std::pair<std::vector<NodeId>, double>> ExactJaccardMedian(
    const std::vector<std::vector<NodeId>>& sets) {
  if (sets.empty()) {
    return Status::InvalidArgument("median of an empty collection");
  }
  std::vector<NodeId> universe;
  for (const auto& s : sets) universe.insert(universe.end(), s.begin(), s.end());
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()), universe.end());
  if (universe.size() > 20) {
    return Status::InvalidArgument("union too large for exact median");
  }
  const size_t u = universe.size();

  std::vector<uint32_t> masks;
  masks.reserve(sets.size());
  for (const auto& s : sets) {
    uint32_t mask = 0;
    for (NodeId v : s) {
      const size_t pos = static_cast<size_t>(
          std::lower_bound(universe.begin(), universe.end(), v) -
          universe.begin());
      mask |= uint32_t{1} << pos;
    }
    masks.push_back(mask);
  }

  double best_cost = 2.0;
  uint32_t best_mask = 0;
  for (uint32_t candidate = 0; candidate < (uint32_t{1} << u); ++candidate) {
    double total = 0.0;
    const int c = __builtin_popcount(candidate);
    for (uint32_t mask : masks) {
      const int inter = __builtin_popcount(candidate & mask);
      const int uni = c + __builtin_popcount(mask) - inter;
      total += uni == 0 ? 0.0 : 1.0 - static_cast<double>(inter) / uni;
    }
    const double cost = total / static_cast<double>(sets.size());
    if (cost < best_cost - 1e-15) {
      best_cost = cost;
      best_mask = candidate;
    }
  }
  std::vector<NodeId> best_set;
  for (size_t pos = 0; pos < u; ++pos) {
    if ((best_mask >> pos) & 1) best_set.push_back(universe[pos]);
  }
  return std::make_pair(std::move(best_set), best_cost);
}

}  // namespace soi
