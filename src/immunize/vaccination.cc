#include "immunize/vaccination.h"

#include <algorithm>
#include <numeric>

#include "cascade/world.h"
#include "util/bitvector.h"

namespace soi {

namespace {

Status CheckInfected(const ProbGraph& graph, std::span<const NodeId> infected) {
  if (infected.empty()) return Status::InvalidArgument("no infected nodes");
  for (NodeId s : infected) {
    if (s >= graph.num_nodes()) {
      return Status::OutOfRange("infected node out of range");
    }
  }
  return Status::OK();
}

// Outbreak size in `world` from `infected`, treating `blocked` nodes as
// removed (they neither get infected nor transmit). Blocked infected nodes
// do not occur (vaccination targets are healthy by construction).
uint64_t OutbreakSize(const Csr& world, std::span<const NodeId> infected,
                      const BitVector& blocked, BitVector* visited,
                      std::vector<NodeId>* frontier) {
  visited->Reset();
  frontier->clear();
  for (NodeId s : infected) {
    if (!blocked.Test(s) && visited->TestAndSet(s)) frontier->push_back(s);
  }
  for (size_t read = 0; read < frontier->size(); ++read) {
    for (NodeId v : world.Neighbors((*frontier)[read])) {
      if (blocked.Test(v)) continue;
      if (visited->TestAndSet(v)) frontier->push_back(v);
    }
  }
  return frontier->size();
}

}  // namespace

Result<VaccinationResult> SelectVaccinationTargets(
    const ProbGraph& graph, std::span<const NodeId> infected,
    const VaccinationOptions& options, Rng* rng) {
  SOI_RETURN_IF_ERROR(CheckInfected(graph, infected));
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (options.num_worlds == 0) {
    return Status::InvalidArgument("num_worlds must be >= 1");
  }
  const NodeId n = graph.num_nodes();

  // Sample the worlds once; greedy rounds reuse them (common random numbers
  // make marginal comparisons low-variance).
  std::vector<Csr> worlds;
  worlds.reserve(options.num_worlds);
  for (uint32_t i = 0; i < options.num_worlds; ++i) {
    worlds.push_back(SampleWorld(graph, rng));
  }

  BitVector is_infected(n);
  for (NodeId s : infected) is_infected.Set(s);

  // Infection frequency over worlds -> candidate pool.
  std::vector<uint32_t> hit_count(n, 0);
  BitVector visited(n);
  std::vector<NodeId> frontier;
  BitVector no_block(n);
  for (const Csr& world : worlds) {
    OutbreakSize(world, infected, no_block, &visited, &frontier);
    for (NodeId v : frontier) ++hit_count[v];
  }
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < n; ++v) {
    if (hit_count[v] > 0 && !is_infected.Test(v)) candidates.push_back(v);
  }
  if (options.max_candidates > 0 &&
      candidates.size() > options.max_candidates) {
    std::partial_sort(candidates.begin(),
                      candidates.begin() + options.max_candidates,
                      candidates.end(), [&](NodeId a, NodeId b) {
                        return hit_count[a] != hit_count[b]
                                   ? hit_count[a] > hit_count[b]
                                   : a < b;
                      });
    candidates.resize(options.max_candidates);
    std::sort(candidates.begin(), candidates.end());
  }

  VaccinationResult result;
  BitVector blocked(n);
  auto expected_outbreak = [&](const BitVector& block) {
    uint64_t total = 0;
    for (const Csr& world : worlds) {
      total += OutbreakSize(world, infected, block, &visited, &frontier);
    }
    return static_cast<double>(total) / worlds.size();
  };
  result.outbreak_before = expected_outbreak(blocked);

  double current = result.outbreak_before;
  const uint32_t k = std::min<uint32_t>(
      options.k, static_cast<uint32_t>(candidates.size()));
  for (uint32_t round = 0; round < k; ++round) {
    NodeId best = kInvalidNode;
    double best_outbreak = current + 1.0;
    for (NodeId v : candidates) {
      if (blocked.Test(v)) continue;
      blocked.Set(v);
      const double outbreak = expected_outbreak(blocked);
      blocked.Clear(v);
      if (outbreak < best_outbreak) {
        best_outbreak = outbreak;
        best = v;
      }
    }
    if (best == kInvalidNode) break;
    blocked.Set(best);
    result.vaccinated.push_back(best);
    result.steps.push_back({best, current - best_outbreak, best_outbreak});
    current = best_outbreak;
  }
  result.outbreak_after = current;
  return result;
}

Result<double> EstimateOutbreak(const ProbGraph& graph,
                                std::span<const NodeId> infected,
                                std::span<const NodeId> removed,
                                uint32_t num_samples, Rng* rng) {
  SOI_RETURN_IF_ERROR(CheckInfected(graph, infected));
  if (num_samples == 0) {
    return Status::InvalidArgument("num_samples must be >= 1");
  }
  const NodeId n = graph.num_nodes();
  BitVector blocked(n);
  for (NodeId v : removed) {
    if (v >= n) return Status::OutOfRange("removed node out of range");
    blocked.Set(v);
  }
  BitVector visited(n);
  std::vector<NodeId> frontier;
  uint64_t total = 0;
  for (uint32_t i = 0; i < num_samples; ++i) {
    const Csr world = SampleWorld(graph, rng);
    total += OutbreakSize(world, infected, blocked, &visited, &frontier);
  }
  return static_cast<double>(total) / num_samples;
}

}  // namespace soi
