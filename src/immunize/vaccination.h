#ifndef SOI_IMMUNIZE_VACCINATION_H_
#define SOI_IMMUNIZE_VACCINATION_H_

#include <span>
#include <vector>

#include "graph/prob_graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace soi {

/// Data-driven vaccination (the paper's §7/§8 pointer to Zhang & Prakash,
/// DAVA): given a set of already-infected nodes, choose k healthy nodes to
/// vaccinate (remove from the graph) so that the expected final outbreak is
/// minimized.
///
/// Greedy on sampled worlds: each round evaluates, for every candidate, the
/// expected number of nodes *saved* by additionally removing it, and commits
/// the best. The objective (expected outbreak size after removals) is
/// monotone non-increasing but NOT supermodular in general, so this is a
/// principled heuristic — the same footing as DAVA — rather than an
/// approximation algorithm.
struct VaccinationOptions {
  /// Number of nodes to vaccinate.
  uint32_t k = 10;
  /// Worlds sampled once and reused across rounds.
  uint32_t num_worlds = 128;
  /// Candidate pool: the healthy nodes most frequently infected across the
  /// sampled worlds (0 = all healthy nodes that were ever infected).
  /// Restricting the pool bounds each round to
  /// O(candidates * worlds * outbreak).
  uint32_t max_candidates = 200;
};

struct VaccinationStep {
  NodeId vaccinated = kInvalidNode;
  /// Expected nodes saved by this vaccination (marginal).
  double saved = 0.0;
  /// Expected outbreak size after it.
  double outbreak_after = 0.0;
};

struct VaccinationResult {
  std::vector<NodeId> vaccinated;  // in selection order
  std::vector<VaccinationStep> steps;
  double outbreak_before = 0.0;
  double outbreak_after = 0.0;
};

/// Selects vaccination targets for the outbreak started by `infected`.
/// Infected nodes cannot be vaccinated (it is too late for them).
Result<VaccinationResult> SelectVaccinationTargets(
    const ProbGraph& graph, std::span<const NodeId> infected,
    const VaccinationOptions& options, Rng* rng);

/// Expected outbreak size from `infected` when `removed` nodes are
/// vaccinated, by direct Monte-Carlo (evaluation utility; fresh worlds).
Result<double> EstimateOutbreak(const ProbGraph& graph,
                                std::span<const NodeId> infected,
                                std::span<const NodeId> removed,
                                uint32_t num_samples, Rng* rng);

}  // namespace soi

#endif  // SOI_IMMUNIZE_VACCINATION_H_
