#ifndef SOI_DYNAMIC_KEYED_SAMPLER_H_
#define SOI_DYNAMIC_KEYED_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "graph/csr.h"
#include "index/cascade_index.h"
#include "util/rng.h"

namespace soi {

/// Keyed (counter-based) world sampling for incrementally maintained
/// indexes.
///
/// The static build path (cascade/world.h) draws edge coins *sequentially*
/// from each world's stream, so inserting or deleting one edge shifts every
/// later coin and silently re-randomizes the whole world — incremental
/// maintenance could never match a fresh rebuild byte-for-byte. Here every
/// random draw is instead a pure function of (world stream, edge identity):
///
///   coin(i, u→v) = streams.Fork(i).Fork(key(u,v)).NextDouble()
///
/// using the non-advancing Rng::Fork(stream) from util/rng.h. Untouched
/// edges therefore keep their exact coins across any sequence of updates,
/// which yields the central parity theorem of src/dynamic/ (DESIGN §13):
/// a world none of whose touched-edge coin outcomes changed has a live-edge
/// set — and hence condensation, closure, and serialized bytes — identical
/// to a from-scratch keyed build on the updated graph.
///
/// Key spaces (disjoint):
///  - Independent Cascade: one coin per arc, key = (u + 1) << 32 | v
///    (high half nonzero).
///  - Linear Threshold: one draw r(v) per *node*, key = v (high half
///    zero); the draw selects at most one in-arc of v by cumulative
///    in-weights in ascending-src order (KKT live-edge equivalence, see
///    cascade/threshold.h). Touching any in-arc of v re-reads the same
///    r(v) against the new weight layout.
class KeyedWorldSampler {
 public:
  /// `graph` must outlive the sampler. `seed` is the index seed; the
  /// sampler derives the world-stream family exactly like
  /// CascadeIndex::Build (master.Fork() once, then Fork(i) per world).
  KeyedWorldSampler(const DynamicGraph* graph, PropagationModel model,
                    uint64_t seed)
      : graph_(graph), model_(model), streams_(Rng(seed).Fork()) {}

  PropagationModel model() const { return model_; }

  /// IC coin of arc (u, v) in world i, in [0, 1). The arc is live iff
  /// coin < p(u, v). Independent of whether the arc currently exists.
  double IcCoin(uint32_t i, NodeId u, NodeId v) const {
    return streams_.Fork(i).Fork(IcKey(u, v)).NextDouble();
  }

  /// LT selector draw of node v in world i, in [0, 1).
  double LtDraw(uint32_t i, NodeId v) const {
    return streams_.Fork(i).Fork(LtKey(v)).NextDouble();
  }

  /// The in-arc of v kept in world i under the current graph (LT live-edge
  /// rule: first src in ascending order whose cumulative weight exceeds the
  /// draw), or kInvalidNode when the draw lands past the total in-weight.
  NodeId LtSelectedSource(uint32_t i, NodeId v) const;

  /// Samples world i's live-edge adjacency from the current graph state.
  /// Pure function of (seed, i, graph): the incremental re-draw path and a
  /// from-scratch build call exactly this and agree byte-for-byte.
  Csr SampleWorld(uint32_t i) const;

  /// Appends to `affected` (deduplicated, ascending) every world of
  /// 0..num_worlds-1 whose live-edge set changes when `update` is applied
  /// to the *current* graph state. Must be called BEFORE mutating the
  /// graph. `mark` is caller scratch of size >= num_worlds (any prior
  /// content; entries equal to `stamp` mean already-affected).
  void AffectedWorlds(const GraphUpdate& update, uint32_t num_worlds,
                      std::vector<uint32_t>* mark, uint32_t stamp,
                      std::vector<uint32_t>* affected) const;

  static uint64_t IcKey(NodeId u, NodeId v) {
    return ((static_cast<uint64_t>(u) + 1) << 32) |
           static_cast<uint64_t>(v);
  }
  static uint64_t LtKey(NodeId v) { return static_cast<uint64_t>(v); }

 private:
  // LT selection of v given an explicit draw, against current in-weights.
  NodeId LtSelect(NodeId v, double draw) const;
  // LT selection of v if `update` were applied (evaluated without
  // mutating the graph).
  NodeId LtSelectAfter(NodeId v, double draw, const GraphUpdate& update) const;

  const DynamicGraph* graph_;
  PropagationModel model_;
  Rng streams_;  // world-stream family; never advanced after construction
};

}  // namespace soi

#endif  // SOI_DYNAMIC_KEYED_SAMPLER_H_
