#include "dynamic/dynamic_graph.h"

#include <algorithm>
#include <cstring>
#include <string>

namespace soi {

namespace {

using Nbr = std::pair<NodeId, double>;

std::vector<Nbr>::iterator FindNbr(std::vector<Nbr>& nbrs, NodeId id) {
  return std::lower_bound(
      nbrs.begin(), nbrs.end(), id,
      [](const Nbr& a, NodeId b) { return a.first < b; });
}

std::vector<Nbr>::const_iterator FindNbr(const std::vector<Nbr>& nbrs,
                                         NodeId id) {
  return std::lower_bound(
      nbrs.begin(), nbrs.end(), id,
      [](const Nbr& a, NodeId b) { return a.first < b; });
}

std::string ArcName(NodeId u, NodeId v) {
  return "(" + std::to_string(u) + "," + std::to_string(v) + ")";
}

}  // namespace

DynamicGraph DynamicGraph::FromGraph(const ProbGraph& graph) {
  DynamicGraph out(graph.num_nodes());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const auto nbrs = graph.OutNeighbors(u);
    const auto probs = graph.OutProbs(u);
    out.out_[u].reserve(nbrs.size());
    for (size_t i = 0; i < nbrs.size(); ++i) {
      out.out_[u].emplace_back(nbrs[i], probs[i]);
      out.in_[nbrs[i]].emplace_back(u, probs[i]);
    }
  }
  // in_ receives entries in ascending src order (outer loop), so each
  // in-neighborhood is already sorted by src.
  out.num_edges_ = graph.num_edges();
  return out;
}

Result<double> DynamicGraph::EdgeProb(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes()) {
    return Status::OutOfRange("EdgeProb: node id out of range");
  }
  const auto it = FindNbr(out_[u], v);
  if (it == out_[u].end() || it->first != v) {
    return Status::NotFound("edge " + ArcName(u, v) + " not present");
  }
  return it->second;
}

bool DynamicGraph::HasEdge(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes()) return false;
  const auto it = FindNbr(out_[u], v);
  return it != out_[u].end() && it->first == v;
}

double DynamicGraph::InWeight(NodeId v) const {
  SOI_DCHECK(v < num_nodes());
  double sum = 0.0;
  for (const auto& [src, p] : in_[v]) sum += p;
  return sum;
}

Status DynamicGraph::Validate(const GraphUpdate& update) const {
  const NodeId u = update.src;
  const NodeId v = update.dst;
  if (u >= num_nodes() || v >= num_nodes()) {
    return Status::InvalidArgument(
        "update touches arc " + ArcName(u, v) + " but the graph has " +
        std::to_string(num_nodes()) + " nodes (valid ids: 0.." +
        std::to_string(num_nodes() == 0 ? 0 : num_nodes() - 1) + ")");
  }
  switch (update.kind) {
    case UpdateKind::kEdgeInsert:
      if (u == v) {
        return Status::InvalidArgument(
            "insert of self-loop " + ArcName(u, v) +
            " rejected: self-loops never change a cascade");
      }
      if (!(update.prob > 0.0 && update.prob <= 1.0)) {
        return Status::InvalidArgument(
            "insert of " + ArcName(u, v) + ": probability " +
            std::to_string(update.prob) + " outside (0,1]");
      }
      if (HasEdge(u, v)) {
        return Status::InvalidArgument(
            "insert of " + ArcName(u, v) +
            ": arc already exists (use a prob update to re-weight it)");
      }
      return Status::OK();
    case UpdateKind::kEdgeDelete:
      if (!HasEdge(u, v)) {
        return Status::InvalidArgument("delete of " + ArcName(u, v) +
                                       ": arc does not exist");
      }
      return Status::OK();
    case UpdateKind::kProbUpdate:
      if (!(update.prob > 0.0 && update.prob <= 1.0)) {
        return Status::InvalidArgument(
            "prob update of " + ArcName(u, v) + ": probability " +
            std::to_string(update.prob) + " outside (0,1]");
      }
      if (!HasEdge(u, v)) {
        return Status::InvalidArgument(
            "prob update of " + ArcName(u, v) +
            ": arc does not exist (insert it first)");
      }
      return Status::OK();
  }
  return Status::Internal("unknown update kind");
}

Status DynamicGraph::Apply(const GraphUpdate& update) {
  SOI_RETURN_IF_ERROR(Validate(update));
  const NodeId u = update.src;
  const NodeId v = update.dst;
  switch (update.kind) {
    case UpdateKind::kEdgeInsert:
      out_[u].insert(FindNbr(out_[u], v), {v, update.prob});
      in_[v].insert(FindNbr(in_[v], u), {u, update.prob});
      ++num_edges_;
      break;
    case UpdateKind::kEdgeDelete:
      out_[u].erase(FindNbr(out_[u], v));
      in_[v].erase(FindNbr(in_[v], u));
      --num_edges_;
      break;
    case UpdateKind::kProbUpdate:
      FindNbr(out_[u], v)->second = update.prob;
      FindNbr(in_[v], u)->second = update.prob;
      break;
  }
  return Status::OK();
}

Result<GraphUpdate> DynamicGraph::Inverse(const GraphUpdate& update) const {
  GraphUpdate inv;
  inv.src = update.src;
  inv.dst = update.dst;
  switch (update.kind) {
    case UpdateKind::kEdgeInsert:
      inv.kind = UpdateKind::kEdgeDelete;
      return inv;
    case UpdateKind::kEdgeDelete: {
      SOI_ASSIGN_OR_RETURN(inv.prob, EdgeProb(update.src, update.dst));
      inv.kind = UpdateKind::kEdgeInsert;
      return inv;
    }
    case UpdateKind::kProbUpdate: {
      SOI_ASSIGN_OR_RETURN(inv.prob, EdgeProb(update.src, update.dst));
      inv.kind = UpdateKind::kProbUpdate;
      return inv;
    }
  }
  return Status::Internal("unknown update kind");
}

Result<ProbGraph> DynamicGraph::Materialize() const {
  ProbGraphBuilder builder(num_nodes());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const auto& [v, p] : out_[u]) {
      SOI_RETURN_IF_ERROR(builder.AddEdge(u, v, p));
    }
  }
  return builder.Build();
}

uint64_t DynamicGraph::Fingerprint() const {
  // Must stay in lockstep with GraphFingerprint(const ProbGraph&): same
  // FNV-1a stream over n, m, then (src, dst, prob bits) in (src, dst)
  // order — out_ is iterated exactly in that order.
  uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      h ^= (value >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  mix(num_nodes());
  mix(num_edges_);
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const auto& [v, p] : out_[u]) {
      mix(u);
      mix(v);
      uint64_t bits;
      std::memcpy(&bits, &p, sizeof(bits));
      mix(bits);
    }
  }
  return h;
}

}  // namespace soi
