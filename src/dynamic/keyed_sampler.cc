#include "dynamic/keyed_sampler.h"

#include <utility>

namespace soi {

NodeId KeyedWorldSampler::LtSelect(NodeId v, double draw) const {
  double cum = 0.0;
  for (const auto& [src, p] : graph_->In(v)) {
    cum += p;
    if (draw < cum) return src;
  }
  return kInvalidNode;
}

NodeId KeyedWorldSampler::LtSelectAfter(NodeId v, double draw,
                                        const GraphUpdate& update) const {
  // Walk the in-neighborhood of v as it would look after `update`:
  // ascending src order with (src == update.src) skipped / re-weighted /
  // spliced in. Floating-point accumulation order matches what LtSelect
  // computes on the post-update graph, so pre/post comparisons are exact.
  const NodeId u = update.src;
  double cum = 0.0;
  bool inserted = update.kind != UpdateKind::kEdgeInsert;
  for (const auto& [src, p] : graph_->In(v)) {
    if (!inserted && u < src) {
      cum += update.prob;
      if (draw < cum) return u;
      inserted = true;
    }
    if (src == u) {
      if (update.kind == UpdateKind::kEdgeDelete) continue;
      if (update.kind == UpdateKind::kProbUpdate) {
        cum += update.prob;
        if (draw < cum) return src;
        continue;
      }
    }
    cum += p;
    if (draw < cum) return src;
  }
  if (!inserted) {
    cum += update.prob;
    if (draw < cum) return u;
  }
  return kInvalidNode;
}

NodeId KeyedWorldSampler::LtSelectedSource(uint32_t i, NodeId v) const {
  return LtSelect(v, LtDraw(i, v));
}

Csr KeyedWorldSampler::SampleWorld(uint32_t i) const {
  const NodeId n = graph_->num_nodes();
  const Rng wstream = streams_.Fork(i);
  Csr world;
  world.offsets.assign(n + 1, 0);
  if (model_ == PropagationModel::kIndependentCascade) {
    // Live edges emerge in (src, dst) order; fill the CSR directly.
    for (NodeId u = 0; u < n; ++u) {
      for (const auto& [v, p] : graph_->Out(u)) {
        if (wstream.Fork(IcKey(u, v)).NextDouble() < p) {
          world.targets.push_back(v);
        }
      }
      world.offsets[u + 1] = static_cast<uint32_t>(world.targets.size());
    }
    return world;
  }
  // Linear Threshold: each node keeps at most one in-arc; collect the
  // selected (src, dst) pairs and build a forward CSR (FromEdges sorts).
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < n; ++v) {
    const NodeId src = LtSelect(v, wstream.Fork(LtKey(v)).NextDouble());
    if (src != kInvalidNode) edges.emplace_back(src, v);
  }
  return Csr::FromEdges(n, std::move(edges), /*dedupe=*/false);
}

void KeyedWorldSampler::AffectedWorlds(const GraphUpdate& update,
                                       uint32_t num_worlds,
                                       std::vector<uint32_t>* mark,
                                       uint32_t stamp,
                                       std::vector<uint32_t>* affected) const {
  SOI_DCHECK(mark->size() >= num_worlds);
  const auto add = [&](uint32_t i) {
    if ((*mark)[i] != stamp) {
      (*mark)[i] = stamp;
      affected->push_back(i);
    }
  };
  if (model_ == PropagationModel::kIndependentCascade) {
    // An IC world changes iff the touched arc's liveness flips. Insert:
    // live under the new prob. Delete: was live under the old prob. Prob
    // change: liveness differs between old and new threshold.
    double p_old = 0.0;
    if (update.kind != UpdateKind::kEdgeInsert) {
      const auto existing = graph_->EdgeProb(update.src, update.dst);
      SOI_DCHECK(existing.ok());
      p_old = *existing;
    }
    for (uint32_t i = 0; i < num_worlds; ++i) {
      const double coin = IcCoin(i, update.src, update.dst);
      bool changed = false;
      switch (update.kind) {
        case UpdateKind::kEdgeInsert:
          changed = coin < update.prob;
          break;
        case UpdateKind::kEdgeDelete:
          changed = coin < p_old;
          break;
        case UpdateKind::kProbUpdate:
          changed = (coin < p_old) != (coin < update.prob);
          break;
      }
      if (changed) add(i);
    }
    return;
  }
  // LT: the op perturbs dst's in-weight layout; world i changes iff dst's
  // selected in-arc changes under the same keyed draw.
  for (uint32_t i = 0; i < num_worlds; ++i) {
    const double draw = LtDraw(i, update.dst);
    if (LtSelect(update.dst, draw) !=
        LtSelectAfter(update.dst, draw, update)) {
      add(i);
    }
  }
}

}  // namespace soi
