#ifndef SOI_DYNAMIC_DYNAMIC_GRAPH_H_
#define SOI_DYNAMIC_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/prob_graph.h"
#include "util/status.h"

namespace soi {

/// One mutation of the probabilistic graph. The node universe is fixed:
/// updates add, remove, or re-weight arcs between existing node ids (the
/// serving story is "the social graph's edges and learned p(u,v) drift";
/// node churn is a re-shard, not an update).
enum class UpdateKind : uint8_t {
  /// Add arc (src, dst) with probability `prob`; the arc must not exist.
  kEdgeInsert,
  /// Remove arc (src, dst); the arc must exist. `prob` is ignored.
  kEdgeDelete,
  /// Replace the probability of existing arc (src, dst) with `prob`.
  kProbUpdate,
};

struct GraphUpdate {
  UpdateKind kind = UpdateKind::kEdgeInsert;
  NodeId src = 0;
  NodeId dst = 0;
  double prob = 0.0;
};

/// A mutable edge-weighted adjacency over a fixed node universe — the
/// updatable twin of the immutable ProbGraph. Both directions are kept
/// sorted (out-edges by dst, in-edges by src), so iteration order is
/// canonical: materializing to a ProbGraph and sampling worlds straight off
/// this structure visit edges in exactly the same (src, dst) order, which
/// is what makes incremental re-sampling byte-identical to a fresh build
/// (see dynamic/keyed_sampler.h).
///
/// Mutations are O(degree) (vector insert into a sorted neighborhood);
/// fine for the update-stream workloads this serves, where per-update index
/// maintenance dominates by orders of magnitude.
class DynamicGraph {
 public:
  DynamicGraph() = default;
  explicit DynamicGraph(NodeId num_nodes)
      : out_(num_nodes), in_(num_nodes) {}

  /// Copies an immutable graph into mutable form.
  static DynamicGraph FromGraph(const ProbGraph& graph);

  NodeId num_nodes() const { return static_cast<NodeId>(out_.size()); }
  uint64_t num_edges() const { return num_edges_; }

  /// Out-neighborhood of u as (dst, prob), sorted by dst ascending.
  std::span<const std::pair<NodeId, double>> Out(NodeId u) const {
    SOI_DCHECK(u < out_.size());
    return out_[u];
  }

  /// In-neighborhood of v as (src, prob), sorted by src ascending.
  std::span<const std::pair<NodeId, double>> In(NodeId v) const {
    SOI_DCHECK(v < in_.size());
    return in_[v];
  }

  /// Probability of arc (u, v), or NotFound.
  Result<double> EdgeProb(NodeId u, NodeId v) const;

  bool HasEdge(NodeId u, NodeId v) const;

  /// Sum of incoming probabilities of v (the Linear Threshold budget).
  double InWeight(NodeId v) const;

  /// Checks whether `update` would apply cleanly to the current state
  /// (unknown node, duplicate insert, missing edge, probability outside
  /// (0, 1], self-loop) without mutating anything. Apply() performs the
  /// same checks; this exists so batch drivers can validate-then-commit.
  Status Validate(const GraphUpdate& update) const;

  /// Applies one mutation. Errors (same conditions as Validate) leave the
  /// graph untouched and name the offending arc.
  Status Apply(const GraphUpdate& update);

  /// Inverts `update` against the *pre-application* state: the returned
  /// update undoes it. Call before Apply (it reads the current probability
  /// of the arc for deletes/re-weights).
  Result<GraphUpdate> Inverse(const GraphUpdate& update) const;

  /// Builds the equivalent immutable ProbGraph (canonical CSR form).
  Result<ProbGraph> Materialize() const;

  /// Equals GraphFingerprint(*Materialize()) without materializing: the
  /// identity check a stale-snapshot guard or a rebuild-parity assert uses.
  uint64_t Fingerprint() const;

 private:
  // Both neighborhoods store (neighbor, prob) and stay sorted by neighbor.
  std::vector<std::vector<std::pair<NodeId, double>>> out_;
  std::vector<std::vector<std::pair<NodeId, double>>> in_;
  uint64_t num_edges_ = 0;
};

}  // namespace soi

#endif  // SOI_DYNAMIC_DYNAMIC_GRAPH_H_
