#include "dynamic/dynamic_index.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>

#include "cascade/threshold.h"
#include "core/typical_cascade.h"
#include "obs/metrics.h"
#include "runtime/parallel_for.h"
#include "scc/transitive.h"
#include "util/stats.h"

namespace soi {

namespace {

// Tolerance of the LT in-weight budget, matching ValidateLtWeights.
constexpr double kLtEps = 1e-9;

bool SameCascade(std::span<const NodeId> a, std::span<const NodeId> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace

Result<DynamicIndex> DynamicIndex::Build(const ProbGraph& graph,
                                         const CascadeIndexOptions& options,
                                         uint64_t seed) {
  if (options.num_worlds == 0) {
    return Status::InvalidArgument("DynamicIndex: num_worlds must be >= 1");
  }
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("DynamicIndex: empty graph");
  }
  if (options.model == PropagationModel::kLinearThreshold) {
    SOI_RETURN_IF_ERROR(ValidateLtWeights(graph));
  }
  SOI_OBS_SPAN("dynamic/build");
  DynamicIndex out;
  out.graph_ = DynamicGraph::FromGraph(graph);
  out.options_ = options;
  out.seed_ = seed;

  const KeyedWorldSampler sampler = out.Sampler();
  std::vector<Condensation> worlds(options.num_worlds);
  ParallelFor(0, options.num_worlds, /*grain=*/1, [&](uint64_t i) {
    worlds[i] = out.DeriveWorld(sampler, static_cast<uint32_t>(i));
  });
  SOI_ASSIGN_OR_RETURN(
      out.index_,
      CascadeIndex::FromWorlds(graph.num_nodes(), std::move(worlds),
                               options.closure_budget_mb,
                               RebuildClosures::kRebuild,
                               options.tier_policy));
  return out;
}

Condensation DynamicIndex::DeriveWorld(const KeyedWorldSampler& sampler,
                                       uint32_t i) const {
  const Csr world = sampler.SampleWorld(i);
  Condensation cond = Condensation::Build(world);
  if (options_.transitive_reduction) {
    TransitiveReduce(&cond, options_.reduction);
  }
  return cond;
}

Status DynamicIndex::ValidateLtBudget(const GraphUpdate& update) const {
  if (update.kind == UpdateKind::kEdgeDelete) return Status::OK();
  const NodeId v = update.dst;
  double budget = graph_.InWeight(v) + update.prob;
  if (update.kind == UpdateKind::kProbUpdate) {
    SOI_ASSIGN_OR_RETURN(const double old, graph_.EdgeProb(update.src, v));
    budget -= old;
  }
  if (budget > 1.0 + kLtEps) {
    return Status::InvalidArgument(
        "Linear Threshold update on arc (" + std::to_string(update.src) +
        "," + std::to_string(v) + ") would push node " + std::to_string(v) +
        "'s incoming weight to " + std::to_string(budget) +
        " > 1; re-weight its other in-arcs first");
  }
  return Status::OK();
}

Result<UpdateStats> DynamicIndex::ApplyUpdates(
    std::span<const GraphUpdate> updates) {
  WallTimer timer;
  UpdateStats stats;
  if (updates.empty()) {
    stats.drift = drift_;
    return stats;
  }
  SOI_OBS_SPAN("dynamic/apply_updates");

  const uint32_t num_worlds = index_.num_worlds();
  if (world_mark_.size() < num_worlds) world_mark_.assign(num_worlds, 0);
  if (++world_stamp_ == 0) {  // stamp wrapped: hard reset
    std::fill(world_mark_.begin(), world_mark_.end(), 0);
    world_stamp_ = 1;
  }

  // Phase 1 — apply the batch to the graph, atomically. Each update
  // validates against the state its predecessors left; its affected-world
  // set and its inverse are taken against that same pre-op state (the
  // keyed coins never move, so per-op affected sets compose by union: a
  // world outside the union kept its live-edge selection at every step).
  const KeyedWorldSampler sampler = Sampler();
  std::vector<uint32_t> affected;
  std::vector<GraphUpdate> undo;
  undo.reserve(updates.size());
  Status failure = Status::OK();
  for (const GraphUpdate& update : updates) {
    failure = graph_.Validate(update);
    if (failure.ok() &&
        options_.model == PropagationModel::kLinearThreshold) {
      failure = ValidateLtBudget(update);
    }
    if (!failure.ok()) break;
    sampler.AffectedWorlds(update, num_worlds, &world_mark_, world_stamp_,
                           &affected);
    Result<GraphUpdate> inverse = graph_.Inverse(update);
    SOI_CHECK(inverse.ok());  // Validate passed; the arc state is known
    undo.push_back(std::move(*inverse));
    const Status applied = graph_.Apply(update);
    SOI_CHECK(applied.ok());
  }
  if (!failure.ok()) {
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
      const Status undone = graph_.Apply(*it);
      SOI_CHECK(undone.ok());
    }
    return failure;
  }

  stats.applied_ops = static_cast<uint32_t>(updates.size());
  drift_ += updates.size();
  stats.drift = drift_;

  if (affected.empty()) {
    stats.seconds = timer.ElapsedSeconds();
    return stats;
  }
  std::sort(affected.begin(), affected.end());
  stats.affected_worlds = static_cast<uint32_t>(affected.size());
  SOI_OBS_COUNTER_ADD("dynamic/worlds_recomputed", affected.size());

  // Phase 2 — re-derive exactly the affected worlds (and, when the cache
  // is live, their closures) from the updated graph. Per-world results are
  // pure functions of (seed, world, graph), so this parallel loop is
  // thread-count independent.
  //
  // Cache strategy by tier state: a fully materialized index is patched
  // incrementally (per-world closure swap, byte-identical to a rebuild). A
  // mixed-tier or labels index instead gets a full deterministic tier
  // reassignment after the world swap — per-world incremental accounting
  // has no meaning when the greedy assignment itself depends on world
  // order. A pure-traversal index keeps no cache either way.
  const bool had_cache = index_.has_closure_cache();
  const bool tiered_cache =
      !had_cache && index_.stats().worlds_traversal != index_.num_worlds();
  const uint64_t budget_bytes = options_.closure_budget_mb << 20;
  std::vector<Condensation> new_worlds(affected.size());
  std::vector<ReachabilityClosure> new_closures(had_cache ? affected.size()
                                                          : 0);
  std::atomic<bool> closure_over{false};
  ParallelFor(0, affected.size(), /*grain=*/1, [&](uint64_t k) {
    new_worlds[k] = DeriveWorld(sampler, affected[k]);
    if (had_cache) {
      ReachabilityClosure cl =
          BuildReachabilityClosure(new_worlds[k], budget_bytes / 4);
      if (cl.num_components() != new_worlds[k].num_components()) {
        closure_over.store(true, std::memory_order_relaxed);
      } else {
        new_closures[k] = std::move(cl);
      }
    }
  });

  // Closure-cache fate, mirroring the all-or-nothing build policy: patch
  // when every affected world rebuilt under the per-world cap AND the
  // patched total stays within budget; otherwise drop the whole cache
  // (queries fall back to traversal, byte-identical answers).
  bool keep_cache = had_cache && !closure_over.load();
  if (keep_cache) {
    uint64_t total = index_.stats().closure_bytes;
    for (size_t k = 0; k < affected.size(); ++k) {
      total -= index_.closure(affected[k]).ApproxBytes();
      total += new_closures[k].ApproxBytes();
    }
    keep_cache = total <= budget_bytes;
  }

  // Phase 3 — with old and new state both in hand, find the nodes whose
  // typical cascade may change: exactly those whose cascade differs in
  // some affected world. Needs the closure cache on both sides for cheap
  // span compares; without it, fall back to re-sweeping every node.
  const NodeId num_nodes = index_.num_nodes();
  std::vector<uint8_t> node_changed;
  bool mark_all = false;
  if (typical_ready_) {
    if (!had_cache || !keep_cache) {
      mark_all = true;
    } else {
      node_changed.assign(num_nodes, 0);
      ParallelFor(0, num_nodes, /*grain=*/512, [&](uint64_t v) {
        for (size_t k = 0; k < affected.size(); ++k) {
          const uint32_t i = affected[k];
          const auto old_run = index_.closure(i).Cascade(
              index_.world(i).ComponentOf(static_cast<NodeId>(v)));
          const auto new_run = new_closures[k].Cascade(
              new_worlds[k].ComponentOf(static_cast<NodeId>(v)));
          if (!SameCascade(old_run, new_run)) {
            node_changed[v] = 1;
            return;
          }
        }
      });
    }
  }

  // Phase 4 — patch the index in place. When the all-materialized patch
  // went over budget under a tier-capable policy, reassign tiers instead of
  // dropping to traversal — labels usually still fit.
  const bool rebuild_tiers =
      tiered_cache ||
      (had_cache && !keep_cache &&
       options_.tier_policy != ClosureTierPolicy::kMaterialized);
  if (had_cache && !keep_cache && !rebuild_tiers) {
    index_.DropClosureCache();
  }
  for (size_t k = 0; k < affected.size(); ++k) {
    index_.ReplaceWorld(affected[k], std::move(new_worlds[k]));
    if (keep_cache) {
      index_.SetClosure(affected[k], std::move(new_closures[k]));
    }
  }
  if (rebuild_tiers) {
    index_.RebuildClosureTiers(options_.closure_budget_mb,
                               options_.tier_policy);
  }
  index_.RecomputeStats();

  // Phase 5 — patch the typical-cascade table for the changed nodes.
  if (typical_ready_) {
    if (mark_all) {
      typical_ready_ = false;
      typical_ = FlatSets();
      SOI_RETURN_IF_ERROR(EnsureTypical());
      stats.affected_nodes = num_nodes;
    } else {
      std::vector<NodeId> changed;
      for (NodeId v = 0; v < num_nodes; ++v) {
        if (node_changed[v]) changed.push_back(v);
      }
      stats.affected_nodes = static_cast<uint32_t>(changed.size());
      if (!changed.empty()) {
        // Per-node recompute matches the full sweep byte-for-byte: both
        // run the same median solver over the node's l cascade views.
        std::vector<std::vector<NodeId>> recomputed(changed.size());
        std::atomic<bool> failed{false};
        ParallelForChunks(
            0, changed.size(), /*grain=*/1,
            [&](uint32_t /*chunk*/, uint64_t b, uint64_t e) {
              TypicalCascadeComputer computer(&index_);
              for (uint64_t k = b; k < e; ++k) {
                Result<TypicalCascadeResult> r = computer.Compute(changed[k]);
                if (!r.ok()) {
                  failed.store(true, std::memory_order_relaxed);
                  return;
                }
                recomputed[k] = std::move(r->cascade);
              }
            });
        if (failed.load()) {
          return Status::Internal(
              "typical-cascade patch failed mid-batch; index is consistent "
              "but the typical table was left stale — rebuild via "
              "EnsureTypical()");
        }
        FlatSets patched;
        size_t next = 0;
        for (NodeId v = 0; v < num_nodes; ++v) {
          if (node_changed[v]) {
            patched.AddSet(recomputed[next++]);
          } else {
            patched.AddSet(typical_.Set(v));
          }
        }
        typical_ = std::move(patched);
      }
    }
  }

  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

Status DynamicIndex::EnsureTypical() {
  if (typical_ready_) return Status::OK();
  SOI_OBS_SPAN("dynamic/ensure_typical");
  TypicalCascadeComputer computer(&index_);
  SOI_ASSIGN_OR_RETURN(TypicalCascadeSweep sweep, computer.ComputeAllFlat());
  typical_ = std::move(sweep.cascades);
  typical_ready_ = true;
  return Status::OK();
}

}  // namespace soi
