#ifndef SOI_DYNAMIC_DYNAMIC_INDEX_H_
#define SOI_DYNAMIC_DYNAMIC_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "dynamic/keyed_sampler.h"
#include "index/cascade_index.h"
#include "util/flat_sets.h"
#include "util/status.h"

namespace soi {

/// Per-batch maintenance report.
struct UpdateStats {
  /// Updates applied (== the batch size on success).
  uint32_t applied_ops = 0;
  /// Worlds whose live-edge set changed and were re-derived (sample →
  /// SCC → reduction → closure). The complement was left byte-untouched.
  uint32_t affected_worlds = 0;
  /// Typical-cascade table entries recomputed (0 when the table is not
  /// materialized).
  uint32_t affected_nodes = 0;
  /// Cumulative applied updates since Build (the staleness signal the
  /// service layer's drift-rebuild policy thresholds on).
  uint64_t drift = 0;
  double seconds = 0.0;
};

/// An incrementally maintained cascade index (DESIGN §13): the mutable
/// DynamicGraph, the CascadeIndex over its sampled worlds, and (lazily) the
/// typical-cascade table, kept consistent under EdgeInsert / EdgeDelete /
/// UpdateProb streams.
///
/// The maintenance contract is *exact rebuild equivalence*: after any
/// sequence of successful ApplyUpdates batches, the index (serialized
/// bytes) and every query answer are byte-identical to those of
/// `DynamicIndex::Build(materialized graph, same options, same seed)`.
/// This is possible because world sampling is keyed — every coin is a pure
/// function of (seed, world, edge identity), see dynamic/keyed_sampler.h —
/// so a batch only needs to re-derive the worlds whose touched-edge coins
/// actually flipped an edge's liveness; all other worlds are provably
/// bit-identical to what a fresh build would produce.
///
/// NOTE: keyed sampling draws a different coin sequence than the static
/// CascadeIndex::Build path (which consumes each world stream
/// sequentially), so a DynamicIndex and a static index built from the same
/// seed are different — equally valid — samples of the same distribution.
/// Parity claims are always dynamic-vs-dynamic.
///
/// Closure-cache policy under updates mirrors the build-time all-or-nothing
/// budget: affected worlds' closures are recomputed; if the patched total
/// would exceed the budget the whole cache is dropped (queries fall back to
/// traversal, byte-identical answers) and stays dropped until a full
/// rebuild. The serialized index (index/index_io.h) never includes
/// closures, so rebuild equivalence of the bytes is unaffected.
///
/// Thread-safety: none. The service layer serializes updates against
/// queries (service::Engine holds a shared_mutex); standalone users must do
/// the same.
class DynamicIndex {
 public:
  /// Samples `options.num_worlds` keyed worlds from `graph` and builds the
  /// index (LT instances are weight-validated first). `seed` plays the
  /// role of EngineOptions::seed: same graph + options + seed => same
  /// index, forever, updates included.
  static Result<DynamicIndex> Build(const ProbGraph& graph,
                                    const CascadeIndexOptions& options,
                                    uint64_t seed);

  /// Applies one batch atomically: every update validates against the
  /// state left by its predecessors (an insert may re-weight-then-delete
  /// within one batch), and on any validation error the graph is rolled
  /// back and the index left untouched. On success, re-derives exactly the
  /// affected worlds and patches the typical table (when materialized) for
  /// exactly the nodes whose cascades changed.
  Result<UpdateStats> ApplyUpdates(std::span<const GraphUpdate> updates);

  const CascadeIndex& index() const { return index_; }
  const DynamicGraph& graph() const { return graph_; }
  const CascadeIndexOptions& options() const { return options_; }
  uint64_t seed() const { return seed_; }

  /// Applied updates since Build. The drift-rebuild policy (DESIGN §13.4)
  /// swaps in a freshly built engine when this crosses a threshold —
  /// semantically a no-op thanks to rebuild equivalence, operationally a
  /// compaction (arenas defragment, dropped closure caches come back).
  uint64_t drift() const { return drift_; }

  /// Immutable snapshot of the current graph (for rebuilds and snapshots).
  Result<ProbGraph> MaterializeGraph() const { return graph_.Materialize(); }

  /// Fingerprint of the current graph (matches GraphFingerprint of the
  /// materialized graph; the stale-snapshot guard).
  uint64_t fingerprint() const { return graph_.Fingerprint(); }

  /// Materializes the per-node typical-cascade table (Algorithm 2 sweep)
  /// if absent; later ApplyUpdates batches patch it incrementally. The
  /// table equals TypicalCascadeComputer::ComputeAllFlat on the current
  /// index, always.
  Status EnsureTypical();
  bool has_typical() const { return typical_ready_; }
  const FlatSets& typical() const {
    SOI_CHECK(typical_ready_);
    return typical_;
  }

 private:
  DynamicIndex() = default;

  KeyedWorldSampler Sampler() const {
    return KeyedWorldSampler(&graph_, options_.model, seed_);
  }

  // Builds one world's condensation from the current graph (keyed sample →
  // SCC → optional transitive reduction). The single code path both Build
  // and ApplyUpdates use, which is what makes them agree byte-for-byte.
  Condensation DeriveWorld(const KeyedWorldSampler& sampler,
                           uint32_t i) const;

  // LT-only: incremental weight-budget check for an op (in-weights of the
  // target must stay <= 1).
  Status ValidateLtBudget(const GraphUpdate& update) const;

  DynamicGraph graph_;
  CascadeIndexOptions options_;
  uint64_t seed_ = 0;
  CascadeIndex index_;
  uint64_t drift_ = 0;

  bool typical_ready_ = false;
  FlatSets typical_;  // node v -> typical cascade, when typical_ready_

  // Per-call scratch (world stamp marks for affected-set dedup).
  std::vector<uint32_t> world_mark_;
  uint32_t world_stamp_ = 0;
};

}  // namespace soi

#endif  // SOI_DYNAMIC_DYNAMIC_INDEX_H_
