// Reproduces Figure 7: the "point of saturation" analysis. At greedy
// iteration j, MG_10/MG_1 compares the marginal gain of the 10th-best
// candidate with the best one; a ratio near 1 means the greedy can no longer
// distinguish candidates. The paper runs the *unoptimized* exhaustive greedy
// (CELF cannot produce the full ranking) on its two smallest settings,
// iterations ~50-85; it finds InfMax_std saturating much earlier than
// InfMax_TC.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/typical_cascade.h"
#include "index/cascade_index.h"
#include "infmax/greedy_std.h"
#include "infmax/infmax_tc.h"
#include "util/rng.h"
#include "util/table_printer.h"

int main() {
  using soi::TablePrinter;
  auto config = soi::bench::BenchConfig::FromEnv();
  // Exhaustive greedy is quadratic; default to the paper's two settings
  // unless the user explicitly picked datasets.
  // The paper runs NetHEPT-F and Twitter-S. At our reduced scale
  // NetHEPT-F's spheres collapse to near-singletons (integer-tie coverage
  // gains), so the default picks the two datasets whose sphere-size profile
  // at this scale matches the paper's: Digg-S and Twitter-S.
  if (std::getenv("SOI_DATASETS") == nullptr) {
    config.configs = {"Digg-S", "Twitter-S"};
  }
  soi::bench::PrintBanner(
      "Figure 7", "Marginal-gain ratio MG_10/MG_1 per greedy iteration",
      config);

  // Window scaled to our graph sizes (the paper's iterations 50-85 on
  // 15K-23K-node graphs correspond to proportionally earlier iterations on
  // the reduced datasets). Override with SOI_SAT_FIRST / SOI_SAT_LAST.
  auto env_u32 = [](const char* name, uint32_t fallback) {
    const char* v = std::getenv(name);
    return v == nullptr ? fallback
                        : static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
  };
  const uint32_t first_iter = env_u32("SOI_SAT_FIRST", 0);
  const uint32_t last_iter =
      std::min<uint32_t>(env_u32("SOI_SAT_LAST", 40), config.k);

  uint64_t total_worlds = 0;
  for (const auto& name : config.configs) {
    const soi::Dataset dataset = soi::bench::LoadDatasetOrDie(name, config);
    const soi::ProbGraph& g = dataset.graph;
    const uint32_t k = std::min<uint32_t>(last_iter, g.num_nodes());

    soi::CascadeIndexOptions index_options;
    index_options.num_worlds = config.worlds;
    soi::Rng rng(config.seed + 6);
    auto index = soi::CascadeIndex::Build(g, index_options, &rng);
    if (!index.ok()) return 1;
    total_worlds += index->num_worlds();

    // The paper runs the *unoptimized* greedy with Monte-Carlo estimates;
    // the MC noise is precisely what drives MG_10/MG_1 toward 1.
    soi::GreedyStdMcOptions std_options;
    std_options.k = k;
    std_options.mc_samples = config.worlds;
    std_options.track_saturation = true;
    soi::Rng std_rng(config.seed + 60);
    auto std_result = soi::InfMaxStdMc(g, std_options, &std_rng);
    if (!std_result.ok()) return 1;

    soi::TypicalCascadeComputer computer(&*index);
    auto typical = computer.ComputeAllFlat();
    if (!typical.ok()) return 1;
    soi::InfMaxTcOptions tc_options;
    tc_options.k = k;
    tc_options.track_saturation = true;
    auto tc_result =
        soi::InfMaxTC(typical->cascades, g.num_nodes(), tc_options);
    if (!tc_result.ok()) return 1;

    std::printf("# series %s: iteration ratio_std ratio_TC gain_TC\n",
                name.c_str());
    double std_sum = 0.0, tc_sum = 0.0;
    uint32_t count = 0;
    // "Informative window": iterations where the TC objective still has
    // dynamic range (best coverage gain > 1 node). Past it, coverage gains
    // are tied small integers — the reduced-scale analogue of the paper's
    // saturation point (their Fig 7 starts at iteration 50 on ~20x larger
    // graphs).
    uint32_t tc_saturation_iter = k;
    uint32_t std_saturation_iter = k;
    for (uint32_t j = first_iter; j < k; ++j) {
      const double rs = std_result->steps[j].mg_ratio_10_1;
      const double rt = tc_result->steps[j].mg_ratio_10_1;
      const double tc_gain = tc_result->steps[j].marginal_gain;
      std::printf("%-12s %4u %8.4f %8.4f %8.0f\n", name.c_str(), j + 1, rs,
                  rt, tc_gain);
      if (tc_gain > 1.0) {
        std_sum += rs;
        tc_sum += rt;
        ++count;
      } else if (tc_saturation_iter == k) {
        tc_saturation_iter = j + 1;
      }
      if (rs >= 0.99 && std_saturation_iter == k) std_saturation_iter = j + 1;
    }
    if (count > 0) {
      std::printf(
          "informative window (TC gain > 1 node, %u iterations): "
          "avg ratio std=%.4f TC=%.4f\n",
          count, std_sum / count, tc_sum / count);
    }
    std::printf("saturation onset: TC at iteration %u, std ratio>=0.99 at "
                "%u (k=%u)\n\n",
                tc_saturation_iter, std_saturation_iter, k);
  }
  std::printf(
      "Expected shape (paper Fig 7): while the objective still has dynamic "
      "range, InfMax_std's MG_10/MG_1 sits much closer to 1 than "
      "InfMax_TC's (weaker discrimination); past the informative window the "
      "reduced-scale datasets tie TC's integer coverage gains at ratio "
      "exactly 1.0, the analogue of the paper's saturation at iteration "
      "~65 on the 20x larger originals.\n");
  soi::bench::ReportMemory(total_worlds);
  soi::bench::WriteMetricsSidecar("fig7");
  return 0;
}
