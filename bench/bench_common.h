#ifndef SOI_BENCH_BENCH_COMMON_H_
#define SOI_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "gen/datasets.h"

namespace soi::bench {

/// Shared configuration for the experiment harnesses. Every knob can be
/// overridden from the environment so the same binaries scale from smoke
/// runs to paper-sized sweeps:
///
///   SOI_SCALE       dataset scale factor (default 0.25 of registry size)
///   SOI_WORLDS      sampled worlds l for indexes (default 128; paper: 1000)
///   SOI_EVAL_WORLDS fresh worlds for unbiased evaluation (default 200)
///   SOI_K           seed-set size for influence maximization (default 100;
///                   paper: 200)
///   SOI_NODE_CAP    max nodes per dataset for per-node sweeps (default 0 =
///                   all nodes)
///   SOI_DATASETS    comma-separated config subset (default: all 12)
///   SOI_SEED        master RNG seed (default 42)
///   SOI_THREADS     worker threads for parallel sampling / estimation
///                   (default 0 = hardware concurrency; results are
///                   identical for every value, see src/runtime/)
///   SOI_OBS         0 disables all metrics/tracing instrumentation
///                   (default enabled; see src/obs/)
///   SOI_TRACE_OUT   when set, capture spans and write a Chrome trace JSON
///                   to this path at sidecar time
///   SOI_CLOSURE_BUDGET_MB  memory budget for the per-world closure cache
///                   (default 512, 0 disables; see index/cascade_index.h).
///                   Read by the library itself, so it reaches every index
///                   the benches build; outputs are identical either way.
struct BenchConfig {
  double scale = 0.25;
  uint32_t worlds = 128;
  uint32_t eval_worlds = 200;
  uint32_t k = 100;
  uint32_t node_cap = 0;
  std::vector<std::string> configs;
  uint64_t seed = 42;
  uint32_t threads = 0;

  /// Reads the environment and applies SOI_THREADS to the global runtime
  /// (soi::SetGlobalThreads), so every bench harness honors it.
  static BenchConfig FromEnv();

  DatasetOptions dataset_options() const {
    DatasetOptions options;
    options.scale = scale;
    options.seed = seed;
    return options;
  }
};

/// Loads one dataset, aborting with a message on failure (benches have no
/// meaningful recovery path).
Dataset LoadDatasetOrDie(const std::string& config, const BenchConfig& bench);

/// Prints the standard harness banner.
void PrintBanner(const char* artifact, const char* description,
                 const BenchConfig& config);

/// Writes the obs registry (per-phase timers, counters, memory high-water)
/// to BENCH_<artifact>.metrics.json so every BENCH_* artifact has a
/// phase-attributable cost sidecar; also writes SOI_TRACE_OUT when set.
/// Wall time is measured from BenchConfig::FromEnv(). No-op when SOI_OBS=0.
void WriteMetricsSidecar(const char* artifact);

/// Peak-memory columns every harness reports: process peak RSS (VmHWM, so
/// it covers the hungriest moment of the run, not the state at exit) and
/// that peak amortized over the worlds the harness sampled. Both are 0 on
/// systems without procfs.
struct MemoryReport {
  uint64_t peak_rss_bytes = 0;
  uint64_t bytes_per_world = 0;
};

/// Reads the obs memory probe, prints the standard
/// "memory: peak_rss_bytes=... bytes_per_world=..." footer line, and
/// returns the numbers so JSON-emitting harnesses can embed them as
/// columns. `total_worlds` is the number of sampled worlds the harness
/// built across all of its indexes (0 => bytes_per_world reported as 0).
MemoryReport ReportMemory(uint64_t total_worlds);

}  // namespace soi::bench

#endif  // SOI_BENCH_BENCH_COMMON_H_
