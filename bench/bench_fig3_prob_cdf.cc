// Reproduces Figure 3: CDF of edge influence probabilities per method of
// obtaining them — Saito EM (left), Goyal frequentist (center), weighted
// cascade (right). The paper omits the fixed-0.1 method (a step function).
//
// Output: one CDF series per dataset, "p F(p)" pairs, plus quartile summary.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table_printer.h"

int main() {
  using soi::TablePrinter;
  const auto config = soi::bench::BenchConfig::FromEnv();
  soi::bench::PrintBanner(
      "Figure 3", "CDF of edge probabilities (learnt and assigned)", config);

  TablePrinter summary(
      {"Config", "edges", "p25", "median", "p75", "p95", "max"});
  for (const auto& name : config.configs) {
    if (name.ends_with("-F")) continue;  // step function, as in the paper
    const soi::Dataset dataset = soi::bench::LoadDatasetOrDie(name, config);
    const soi::ProbGraph& g = dataset.graph;
    soi::EmpiricalDistribution dist;
    dist.Reserve(g.num_edges());
    for (soi::EdgeId e = 0; e < g.num_edges(); ++e) {
      dist.Add(g.EdgeProb(e));
    }
    if (dist.count() == 0) continue;
    summary.AddRow({name, TablePrinter::Fmt(uint64_t{g.num_edges()}),
                    TablePrinter::Fmt(dist.Quantile(0.25), 4),
                    TablePrinter::Fmt(dist.Quantile(0.5), 4),
                    TablePrinter::Fmt(dist.Quantile(0.75), 4),
                    TablePrinter::Fmt(dist.Quantile(0.95), 4),
                    TablePrinter::Fmt(dist.Quantile(1.0), 4)});

    std::printf("# CDF series %s (p, F(p))\n", name.c_str());
    for (const auto& [x, fx] : dist.CdfSeries(16)) {
      std::printf("%-10s %.4f %.4f\n", name.c_str(), x, fx);
    }
    std::printf("\n");
  }
  summary.Print(std::cout);
  std::printf(
      "\nExpected shape (paper): Goyal (-G) probabilities stochastically "
      "dominate Saito (-S); WC (-W) concentrates near 1/inDeg.\n");
  soi::bench::ReportMemory(0);
  soi::bench::WriteMetricsSidecar("fig3");
  return 0;
}
