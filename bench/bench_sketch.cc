// Sketch-tier calibration: error vs latency for the bottom-k reachability
// sketches behind `accuracy: "sketch"` (src/infmax/sketch_oracle.h).
//
// Two claims back the serving tier, and this harness measures both:
//   1. Accuracy: the mean relative error of sketch spread estimates stays
//      within the advertised 1/sqrt(k-2) bound (Cohen-style bottom-k
//      estimators), measured against the exact closure-based spread on the
//      same sampled worlds.
//   2. Latency: answering from sketches is markedly faster than the exact
//      tier at serving scale (n = 4096, l = 64) — >= 5x in its best regime
//      (small-k sketches on multi-seed queries) — which is what makes
//      "degrade to sketch instead of shedding" a sensible routing policy.
//
// Latency depends on the seed-set size (the exact tier answers single-seed
// queries from an O(1) closure count; sketch costs grow with the number of
// distinct seed components), so rows are broken out per size and every
// timing is the minimum over repetitions to shed scheduler noise.
//
// Output: a table per suite plus BENCH_sketch.json with rows
// {k, seeds, bound, measured_mean_rel_err, sketch_us, exact_us, speedup}
// at serving scale and a small-graph calibration block (n = 512) where the
// exact tier is cheap enough to average tightly.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gen/generators.h"
#include "graph/prob_assign.h"
#include "index/cascade_index.h"
#include "infmax/sketch_oracle.h"
#include "infmax/spread_estimator.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace {

using soi::CascadeIndex;
using soi::CascadeIndexOptions;
using soi::ExactSpreadEstimator;
using soi::NodeId;
using soi::ProbGraph;
using soi::Rng;
using soi::SketchSpreadOracle;
using soi::TablePrinter;
using soi::WallTimer;

constexpr uint32_t kReps = 5;
constexpr uint32_t kQueriesPerSize = 64;
const uint32_t kSketchKs[] = {8, 16, 64, 256};
const uint32_t kSeedSizes[] = {1, 2, 8};

struct Row {
  uint32_t k = 0;
  uint32_t seeds = 0;
  double bound = 0.0;
  double measured_mean_rel_err = 0.0;
  double sketch_us = 0.0;
  double exact_us = 0.0;
  double speedup = 0.0;
};

ProbGraph MakeGraph(uint32_t scale, uint64_t edges, uint64_t seed) {
  Rng topo_rng(seed);
  auto topo = soi::GenerateRmat(scale, edges, {}, &topo_rng);
  SOI_CHECK(topo.ok());
  Rng assign_rng(seed + 1);
  auto graph = soi::AssignUniform(*topo, &assign_rng, 0.05, 0.35);
  SOI_CHECK(graph.ok());
  return *std::move(graph);
}

std::vector<std::vector<NodeId>> MakeQueries(NodeId n, uint32_t size,
                                             uint32_t count) {
  std::vector<std::vector<NodeId>> queries;
  for (uint32_t i = 0; i < count; ++i) {
    std::vector<NodeId> seeds;
    for (uint32_t j = 0; j < size; ++j) {
      seeds.push_back(static_cast<NodeId>((i * 257u + j * 7919u) % n));
    }
    std::sort(seeds.begin(), seeds.end());
    seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
    queries.push_back(std::move(seeds));
  }
  return queries;
}

// Minimum per-query microseconds over kReps passes (the first pass also
// returns the values, which every later pass must reproduce).
template <typename F>
double MinMicros(uint32_t count, F&& pass) {
  double best = 0.0;
  for (uint32_t rep = 0; rep < kReps; ++rep) {
    WallTimer timer;
    pass();
    const double us = timer.ElapsedSeconds() * 1e6 / count;
    if (rep == 0 || us < best) best = us;
  }
  return best;
}

std::vector<Row> RunSuite(const ProbGraph& graph, uint32_t worlds,
                          uint64_t seed, const char* label) {
  CascadeIndexOptions options;
  options.num_worlds = worlds;
  Rng rng(seed);
  auto index = CascadeIndex::Build(graph, options, &rng);
  SOI_CHECK(index.ok());
  const ExactSpreadEstimator exact(&*index);

  std::printf("\n--- %s (n=%u, l=%u, %u queries/size, min of %u reps) ---\n",
              label, graph.num_nodes(), worlds, kQueriesPerSize, kReps);
  std::vector<Row> rows;
  for (const uint32_t size : kSeedSizes) {
    const auto queries = MakeQueries(graph.num_nodes(), size,
                                     kQueriesPerSize);
    std::vector<double> exact_values(queries.size());
    const double exact_us = MinMicros(kQueriesPerSize, [&] {
      for (size_t i = 0; i < queries.size(); ++i) {
        const auto v = exact.EstimateSpread(queries[i]);
        SOI_CHECK(v.ok());
        exact_values[i] = *v;
      }
    });
    for (const uint32_t k : kSketchKs) {
      auto oracle = SketchSpreadOracle::BuildDeterministic(*index, k,
                                                           seed + 17);
      SOI_CHECK(oracle.ok());
      std::vector<double> estimates(queries.size());
      const double sketch_us = MinMicros(kQueriesPerSize, [&] {
        for (size_t i = 0; i < queries.size(); ++i) {
          const auto est = oracle->EstimateSpread(queries[i]);
          SOI_CHECK(est.ok());
          estimates[i] = *est;
        }
      });
      Row row;
      row.k = k;
      row.seeds = size;
      row.bound = SketchSpreadOracle::RelativeErrorBound(k);
      row.sketch_us = sketch_us;
      row.exact_us = exact_us;
      row.speedup = exact_us / sketch_us;
      double err_sum = 0.0;
      for (size_t i = 0; i < queries.size(); ++i) {
        SOI_CHECK(exact_values[i] > 0.0);
        err_sum += std::abs(estimates[i] - exact_values[i]) /
                   exact_values[i];
      }
      row.measured_mean_rel_err = err_sum / queries.size();
      rows.push_back(row);
    }
  }

  TablePrinter table({"k", "seeds", "bound", "mean rel err", "sketch us",
                      "exact us", "speedup"});
  for (const Row& r : rows) {
    table.AddRow({TablePrinter::Fmt(uint64_t{r.k}),
                  TablePrinter::Fmt(uint64_t{r.seeds}),
                  TablePrinter::Fmt(r.bound, 4),
                  TablePrinter::Fmt(r.measured_mean_rel_err, 4),
                  TablePrinter::Fmt(r.sketch_us, 2),
                  TablePrinter::Fmt(r.exact_us, 2),
                  TablePrinter::Fmt(r.speedup, 2)});
  }
  table.Print(std::cout);
  return rows;
}

void EmitRows(std::FILE* f, const std::vector<Row>& rows) {
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"k\": %u, \"seeds\": %u, \"bound\": %.6g, "
                 "\"measured_mean_rel_err\": %.6g, \"sketch_us\": %.6g, "
                 "\"exact_us\": %.6g, \"speedup\": %.4g}%s\n",
                 r.k, r.seeds, r.bound, r.measured_mean_rel_err, r.sketch_us,
                 r.exact_us, r.speedup, i + 1 == rows.size() ? "" : ",");
  }
}

void WriteJson(const char* path, const std::vector<Row>& serving,
               const std::vector<Row>& calibration, uint32_t serving_nodes,
               uint32_t calibration_nodes, uint32_t worlds) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"artifact\": \"sketch\",\n");
  std::fprintf(f,
               "  \"serving\": {\"nodes\": %u, \"worlds\": %u, "
               "\"queries_per_size\": %u, \"rows\": [\n",
               serving_nodes, worlds, kQueriesPerSize);
  EmitRows(f, serving);
  std::fprintf(f, "  ]},\n");
  std::fprintf(f,
               "  \"calibration\": {\"nodes\": %u, \"worlds\": %u, "
               "\"queries_per_size\": %u, \"rows\": [\n",
               calibration_nodes, worlds, kQueriesPerSize);
  EmitRows(f, calibration);
  std::fprintf(f, "  ]}\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main() {
  auto config = soi::bench::BenchConfig::FromEnv();
  soi::bench::PrintBanner(
      "sketch", "Sketch-tier error vs latency calibration", config);

  // Serving scale: the regime the routing policy quotes.
  const ProbGraph serving_graph = MakeGraph(12, 16384, config.seed + 50);
  const std::vector<Row> serving =
      RunSuite(serving_graph, 64, config.seed, "serving scale");

  // Calibration scale: small enough that the exact tier averages tightly.
  const ProbGraph calibration_graph = MakeGraph(9, 2048, config.seed + 60);
  const std::vector<Row> calibration =
      RunSuite(calibration_graph, 64, config.seed + 1, "calibration");

  bool ok = true;
  double best_speedup = 0.0;
  for (const std::vector<Row>* rows : {&serving, &calibration}) {
    for (const Row& r : *rows) {
      if (r.measured_mean_rel_err > r.bound) {
        std::printf("FAIL: k=%u seeds=%u error %.4f exceeds bound %.4f\n",
                    r.k, r.seeds, r.measured_mean_rel_err, r.bound);
        ok = false;
      }
    }
  }
  for (const Row& r : serving) best_speedup = std::max(best_speedup, r.speedup);
  if (best_speedup < 5.0) {
    std::printf("FAIL: best serving-scale speedup %.2fx is below 5x\n",
                best_speedup);
    ok = false;
  }
  std::printf("\nExpected shape: mean relative error within 1/sqrt(k-2) in "
              "every row; small-k sketches >= 5x faster than exact on "
              "multi-seed queries at serving scale (best here: %.1fx).\n",
              best_speedup);

  WriteJson("BENCH_sketch.json", serving, calibration,
            serving_graph.num_nodes(), calibration_graph.num_nodes(), 64);
  soi::bench::WriteMetricsSidecar("sketch");
  return ok ? 0 : 1;
}
