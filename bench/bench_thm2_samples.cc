// Empirical verification of Theorem 2: the cost of the median computed from
// l sampled cascades converges to (1 + O(alpha)) of the optimum with a
// *constant* number of samples, alpha ~ sqrt(log(l)/l). We sweep l and
// report, over a node sample:
//   - the hold-out expected cost of the computed typical cascade
//     (its true quality), and
//   - the in-sample cost (biased low: the overfitting gap Theorem 2 bounds).
//
// Expected shape: hold-out cost drops quickly and flattens by l ~ a few
// hundred (paper §4 picks l = 1000); the in-sample/hold-out gap shrinks
// like 1/sqrt(l).

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/typical_cascade.h"
#include "index/cascade_index.h"
#include "jaccard/jaccard.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"

int main() {
  using soi::TablePrinter;
  auto config = soi::bench::BenchConfig::FromEnv();
  if (std::getenv("SOI_DATASETS") == nullptr) {
    config.configs = {"Twitter-S", "Epinions-F"};
  }
  soi::bench::PrintBanner(
      "Theorem 2", "Median quality vs number of sampled worlds l", config);

  const uint32_t sample_counts[] = {8, 16, 32, 64, 128, 256, 512};
  const uint32_t eval_worlds = std::max(1000u, config.eval_worlds);
  const uint32_t nodes_per_dataset = 200;

  uint64_t total_worlds = 0;
  for (const auto& name : config.configs) {
    const soi::Dataset dataset = soi::bench::LoadDatasetOrDie(name, config);
    const soi::ProbGraph& g = dataset.graph;

    // One large hold-out index shared by all l values.
    soi::CascadeIndexOptions eval_options;
    eval_options.num_worlds = eval_worlds;
    soi::Rng eval_rng(config.seed + 100);
    auto eval_index = soi::CascadeIndex::Build(g, eval_options, &eval_rng);
    if (!eval_index.ok()) return 1;
    total_worlds += eval_index->num_worlds();
    soi::CascadeIndex::Workspace eval_ws;

    // Fixed node sample (stride over the graph).
    std::vector<soi::NodeId> nodes;
    const soi::NodeId stride =
        std::max<soi::NodeId>(1, g.num_nodes() / nodes_per_dataset);
    for (soi::NodeId v = 0; v < g.num_nodes(); v += stride) nodes.push_back(v);

    TablePrinter table({"l", "holdout cost", "in-sample cost", "gap",
                        "avg |C*|"});
    for (const uint32_t l : sample_counts) {
      soi::CascadeIndexOptions options;
      options.num_worlds = l;
      soi::Rng rng(config.seed + l);
      auto index = soi::CascadeIndex::Build(g, options, &rng);
      if (!index.ok()) return 1;
      total_worlds += index->num_worlds();
      soi::TypicalCascadeComputer computer(&*index);

      soi::RunningStats holdout, in_sample, sizes;
      for (const soi::NodeId v : nodes) {
        auto result = computer.Compute(v);
        if (!result.ok()) return 1;
        double total = 0.0;
        for (uint32_t i = 0; i < eval_index->num_worlds(); ++i) {
          total += soi::JaccardDistance(
              eval_index->Cascade(v, i, &eval_ws).value(), result->cascade);
        }
        holdout.Add(total / eval_index->num_worlds());
        in_sample.Add(result->in_sample_cost);
        sizes.Add(static_cast<double>(result->cascade.size()));
      }
      table.AddRow({TablePrinter::Fmt(uint64_t{l}),
                    TablePrinter::Fmt(holdout.mean(), 4),
                    TablePrinter::Fmt(in_sample.mean(), 4),
                    TablePrinter::Fmt(holdout.mean() - in_sample.mean(), 4),
                    TablePrinter::Fmt(sizes.mean(), 1)});
    }
    std::printf("--- %s (%zu nodes, hold-out on %u fresh worlds) ---\n",
                name.c_str(), nodes.size(), eval_worlds);
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (Theorem 2): hold-out cost decreases in l and "
      "flattens at a constant sample size; the in-sample gap shrinks like "
      "sqrt(log(l)/l).\n");
  soi::bench::ReportMemory(total_worlds);
  soi::bench::WriteMetricsSidecar("thm2");
  return 0;
}
