#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel_for.h"
#include "util/flags.h"
#include "util/stats.h"

namespace soi::bench {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atof(value);
}

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback
                          : std::strtoull(value, nullptr, 10);
}

// Wall clock for the metrics sidecar: started when the harness reads its
// config, i.e. effectively at process start.
WallTimer& ProcessTimer() {
  static WallTimer timer;
  return timer;
}

}  // namespace

BenchConfig BenchConfig::FromEnv() {
  ProcessTimer().Restart();
  if (const char* trace_out = std::getenv("SOI_TRACE_OUT")) {
    const Status ok = ValidateWritableOutPath(trace_out);
    if (!ok.ok()) {
      std::fprintf(stderr, "SOI_TRACE_OUT: %s\n", ok.ToString().c_str());
      std::exit(1);
    }
    obs::SetTraceEnabled(true);
  }
  BenchConfig config;
  config.scale = EnvDouble("SOI_SCALE", config.scale);
  config.worlds = static_cast<uint32_t>(EnvU64("SOI_WORLDS", config.worlds));
  config.eval_worlds =
      static_cast<uint32_t>(EnvU64("SOI_EVAL_WORLDS", config.eval_worlds));
  config.k = static_cast<uint32_t>(EnvU64("SOI_K", config.k));
  config.node_cap =
      static_cast<uint32_t>(EnvU64("SOI_NODE_CAP", config.node_cap));
  config.seed = EnvU64("SOI_SEED", config.seed);
  config.threads = static_cast<uint32_t>(EnvU64("SOI_THREADS", config.threads));
  SetGlobalThreads(config.threads);
  if (const char* list = std::getenv("SOI_DATASETS")) {
    std::istringstream iss(list);
    std::string token;
    while (std::getline(iss, token, ',')) {
      if (!token.empty()) config.configs.push_back(token);
    }
  }
  if (config.configs.empty()) config.configs = AllDatasetConfigs();
  return config;
}

Dataset LoadDatasetOrDie(const std::string& config, const BenchConfig& bench) {
  auto dataset = MakeDataset(config, bench.dataset_options());
  if (!dataset.ok()) {
    std::fprintf(stderr, "failed to build dataset %s: %s\n", config.c_str(),
                 dataset.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(dataset).value();
}

void WriteMetricsSidecar(const char* artifact) {
  if (!obs::Enabled()) return;
  const std::string path = std::string("BENCH_") + artifact + ".metrics.json";
  Status ok = ValidateWritableOutPath(path);
  if (ok.ok()) {
    ok = obs::WriteMetricsJson(path, ProcessTimer().ElapsedSeconds());
  }
  if (!ok.ok()) {
    std::fprintf(stderr, "metrics sidecar: %s\n", ok.ToString().c_str());
    return;
  }
  std::printf("wrote %s\n", path.c_str());
  if (const char* trace_out = std::getenv("SOI_TRACE_OUT")) {
    const Status trace_ok = obs::WriteChromeTrace(trace_out);
    if (!trace_ok.ok()) {
      std::fprintf(stderr, "trace: %s\n", trace_ok.ToString().c_str());
    } else {
      std::printf("wrote %s (%zu trace events)\n", trace_out,
                  obs::NumTraceEvents());
    }
  }
}

MemoryReport ReportMemory(uint64_t total_worlds) {
  MemoryReport report;
  report.peak_rss_bytes = obs::ReadMemoryStats().high_water_bytes;
  report.bytes_per_world =
      total_worlds == 0 ? 0 : report.peak_rss_bytes / total_worlds;
  std::printf(
      "memory: peak_rss_bytes=%llu bytes_per_world=%llu (over %llu worlds)\n",
      static_cast<unsigned long long>(report.peak_rss_bytes),
      static_cast<unsigned long long>(report.bytes_per_world),
      static_cast<unsigned long long>(total_worlds));
  return report;
}

void PrintBanner(const char* artifact, const char* description,
                 const BenchConfig& config) {
  std::printf("=== %s ===\n%s\n", artifact, description);
  std::printf(
      "config: scale=%.3g worlds=%u eval_worlds=%u k=%u node_cap=%u seed=%llu"
      " datasets=%zu threads=%u\n\n",
      config.scale, config.worlds, config.eval_worlds, config.k,
      config.node_cap, static_cast<unsigned long long>(config.seed),
      config.configs.size(), GlobalThreads());
}

}  // namespace soi::bench
