// Component microbenchmarks and design-choice ablations (google-benchmark):
//   - possible-world sampling, Tarjan SCC, condensation build
//   - transitive reduction: dense-bitset vs DFS strategies (ablation)
//   - index construction with vs without transitive reduction (ablation)
//   - cascade query through the index vs direct BFS on a materialized world
//     (the paper's reason for the index)
//   - Jaccard median: threshold sweep alone vs + input candidates vs
//     + local search (quality/time ablation)
//   - spread-oracle marginal-gain evaluation

#include <benchmark/benchmark.h>

#include <cstdio>

#include "cascade/world.h"
#include "gen/generators.h"
#include "graph/prob_assign.h"
#include "index/cascade_index.h"
#include "infmax/sketch_oracle.h"
#include "infmax/spread_oracle.h"
#include "jaccard/median.h"
#include "obs/metrics.h"
#include "scc/condensation.h"
#include "scc/tarjan.h"
#include "scc/transitive.h"
#include "util/rng.h"
#include "util/stats.h"

namespace soi {
namespace {

const ProbGraph& TestGraph() {
  static const ProbGraph* graph = [] {
    Rng gen_rng(1);
    auto topo = GenerateRmat(12, 30000, {}, &gen_rng);
    SOI_CHECK(topo.ok());
    Rng assign_rng(2);
    auto g = AssignUniform(*topo, &assign_rng, 0.03, 0.25);
    SOI_CHECK(g.ok());
    return new ProbGraph(std::move(g).value());
  }();
  return *graph;
}

void BM_SampleWorld(benchmark::State& state) {
  const ProbGraph& g = TestGraph();
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleWorld(g, &rng));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_SampleWorld);

void BM_TarjanScc(benchmark::State& state) {
  Rng rng(4);
  const Csr world = SampleWorld(TestGraph(), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TarjanScc(world));
  }
}
BENCHMARK(BM_TarjanScc);

void BM_CondensationBuild(benchmark::State& state) {
  Rng rng(5);
  const Csr world = SampleWorld(TestGraph(), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Condensation::Build(world));
  }
}
BENCHMARK(BM_CondensationBuild);

void BM_TransitiveReduce(benchmark::State& state) {
  const auto strategy = static_cast<ReductionStrategy>(state.range(0));
  Rng rng(6);
  const Csr world = SampleWorld(TestGraph(), &rng);
  const Condensation base = Condensation::Build(world);
  ReductionOptions options;
  options.strategy = strategy;
  options.dense_limit = ~uint32_t{0};  // force dense when asked
  for (auto _ : state) {
    Condensation cond = base;
    benchmark::DoNotOptimize(TransitiveReduce(&cond, options));
  }
}
BENCHMARK(BM_TransitiveReduce)
    ->Arg(static_cast<int>(ReductionStrategy::kDenseBitset))
    ->Arg(static_cast<int>(ReductionStrategy::kDfs))
    ->ArgNames({"strategy"});

void BM_IndexBuild(benchmark::State& state) {
  const bool reduce = state.range(0) != 0;
  CascadeIndexOptions options;
  options.num_worlds = 16;
  options.transitive_reduction = reduce;
  for (auto _ : state) {
    Rng rng(7);
    auto index = CascadeIndex::Build(TestGraph(), options, &rng);
    SOI_CHECK(index.ok());
    benchmark::DoNotOptimize(index->stats().approx_bytes);
  }
}
BENCHMARK(BM_IndexBuild)->Arg(0)->Arg(1)->ArgNames({"reduction"});

void BM_CascadeQueryViaIndex(benchmark::State& state) {
  CascadeIndexOptions options;
  options.num_worlds = 32;
  Rng rng(8);
  const auto index = CascadeIndex::Build(TestGraph(), options, &rng);
  SOI_CHECK(index.ok());
  CascadeIndex::Workspace ws;
  NodeId v = 0;
  uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->Cascade(v, i, &ws));
    v = (v + 911) % TestGraph().num_nodes();
    i = (i + 1) % index->num_worlds();
  }
}
BENCHMARK(BM_CascadeQueryViaIndex);

void BM_CascadeQueryDirectBfs(benchmark::State& state) {
  // The no-index alternative: re-materialize the world and BFS.
  std::vector<Csr> worlds;
  Rng rng(9);
  for (int i = 0; i < 32; ++i) worlds.push_back(SampleWorld(TestGraph(), &rng));
  NodeId v = 0;
  uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReachableFrom(worlds[i], v));
    v = (v + 911) % TestGraph().num_nodes();
    i = (i + 1) % worlds.size();
  }
}
BENCHMARK(BM_CascadeQueryDirectBfs);

void BM_JaccardMedian(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  CascadeIndexOptions options;
  options.num_worlds = 128;
  Rng rng(10);
  const auto index = CascadeIndex::Build(TestGraph(), options, &rng);
  SOI_CHECK(index.ok());
  CascadeIndex::Workspace ws;
  // A moderately influential node: pick the max out-degree one.
  NodeId best = 0;
  for (NodeId v = 0; v < TestGraph().num_nodes(); ++v) {
    if (TestGraph().OutDegree(v) > TestGraph().OutDegree(best)) best = v;
  }
  const auto cascades = index->AllCascades(best, &ws);
  JaccardMedianSolver solver(TestGraph().num_nodes());
  MedianOptions median;
  median.input_candidates = mode >= 1 ? 8 : 0;
  median.local_search = mode >= 2;
  for (auto _ : state) {
    auto result = solver.Compute(cascades, median);
    SOI_CHECK(result.ok());
    benchmark::DoNotOptimize(result->cost);
  }
}
BENCHMARK(BM_JaccardMedian)->Arg(0)->Arg(1)->Arg(2)->ArgNames({"mode"});

void BM_SketchOracleBuild(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  CascadeIndexOptions options;
  options.num_worlds = 16;
  Rng rng(12);
  const auto index = CascadeIndex::Build(TestGraph(), options, &rng);
  SOI_CHECK(index.ok());
  SketchOptions sketch;
  sketch.k = k;
  for (auto _ : state) {
    Rng build_rng(13);
    auto oracle = SketchSpreadOracle::Build(*index, sketch, &build_rng);
    SOI_CHECK(oracle.ok());
    benchmark::DoNotOptimize(oracle->total_sketch_entries());
  }
}
BENCHMARK(BM_SketchOracleBuild)->Arg(8)->Arg(32)->ArgNames({"k"});

// Ablation: sketch-based spread estimate vs exact DFS oracle.
void BM_SketchOracleQuery(benchmark::State& state) {
  CascadeIndexOptions options;
  options.num_worlds = 64;
  Rng rng(14);
  const auto index = CascadeIndex::Build(TestGraph(), options, &rng);
  SOI_CHECK(index.ok());
  SketchOptions sketch;
  sketch.k = 32;
  Rng build_rng(15);
  const auto oracle = SketchSpreadOracle::Build(*index, sketch, &build_rng);
  SOI_CHECK(oracle.ok());
  NodeId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle->EstimateSpread(v));
    v = (v + 131) % TestGraph().num_nodes();
  }
}
BENCHMARK(BM_SketchOracleQuery);

void BM_SpreadOracleGain(benchmark::State& state) {
  CascadeIndexOptions options;
  options.num_worlds = 64;
  Rng rng(11);
  const auto index = CascadeIndex::Build(TestGraph(), options, &rng);
  SOI_CHECK(index.ok());
  SpreadOracle oracle(&*index);
  NodeId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.MarginalGain(v));
    v = (v + 131) % TestGraph().num_nodes();
  }
}
BENCHMARK(BM_SpreadOracleGain);

}  // namespace
}  // namespace soi

// Expanded BENCHMARK_MAIN so the run can emit its metrics sidecar: the
// registry accumulates across all benchmark iterations, which makes the
// sidecar a phase-level complement to google-benchmark's per-op numbers.
int main(int argc, char** argv) {
  soi::WallTimer total_timer;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (soi::obs::Enabled()) {
    const soi::Status ok = soi::obs::WriteMetricsJson(
        "BENCH_micro.metrics.json", total_timer.ElapsedSeconds());
    if (!ok.ok()) {
      std::fprintf(stderr, "metrics sidecar: %s\n", ok.ToString().c_str());
    } else {
      std::printf("wrote BENCH_micro.metrics.json\n");
    }
  }
  return 0;
}
