// Component microbenchmarks and design-choice ablations (google-benchmark):
//   - possible-world sampling, Tarjan SCC, condensation build
//   - transitive reduction: dense-bitset vs DFS strategies (ablation)
//   - index construction with vs without transitive reduction (ablation)
//   - cascade query through the index vs direct BFS on a materialized world
//     (the paper's reason for the index)
//   - cascade extraction kernel: per-query DAG traversal vs the memoized
//     closure cache (the sweep's hot loop); a single-threaded ComputeAll
//     comparison of the two paths is also timed directly and recorded in
//     BENCH_micro.json
//   - Jaccard median: threshold sweep alone vs + input candidates vs
//     + local search (quality/time ablation)
//   - spread-oracle marginal-gain evaluation

#include <benchmark/benchmark.h>

#include <cstdio>

#include "cascade/world.h"
#include "core/typical_cascade.h"
#include "gen/generators.h"
#include "graph/prob_assign.h"
#include "index/cascade_index.h"
#include "infmax/sketch_oracle.h"
#include "infmax/spread_oracle.h"
#include "jaccard/median.h"
#include "obs/metrics.h"
#include "runtime/parallel_for.h"
#include "scc/condensation.h"
#include "scc/tarjan.h"
#include "scc/transitive.h"
#include "service/engine.h"
#include "util/rng.h"
#include "util/stats.h"

namespace soi {
namespace {

const ProbGraph& TestGraph() {
  static const ProbGraph* graph = [] {
    Rng gen_rng(1);
    auto topo = GenerateRmat(12, 30000, {}, &gen_rng);
    SOI_CHECK(topo.ok());
    Rng assign_rng(2);
    auto g = AssignUniform(*topo, &assign_rng, 0.03, 0.25);
    SOI_CHECK(g.ok());
    return new ProbGraph(std::move(g).value());
  }();
  return *graph;
}

void BM_SampleWorld(benchmark::State& state) {
  const ProbGraph& g = TestGraph();
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleWorld(g, &rng));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_SampleWorld);

void BM_TarjanScc(benchmark::State& state) {
  Rng rng(4);
  const Csr world = SampleWorld(TestGraph(), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TarjanScc(world));
  }
}
BENCHMARK(BM_TarjanScc);

void BM_CondensationBuild(benchmark::State& state) {
  Rng rng(5);
  const Csr world = SampleWorld(TestGraph(), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Condensation::Build(world));
  }
}
BENCHMARK(BM_CondensationBuild);

void BM_TransitiveReduce(benchmark::State& state) {
  const auto strategy = static_cast<ReductionStrategy>(state.range(0));
  Rng rng(6);
  const Csr world = SampleWorld(TestGraph(), &rng);
  const Condensation base = Condensation::Build(world);
  ReductionOptions options;
  options.strategy = strategy;
  options.dense_limit = ~uint32_t{0};  // force dense when asked
  for (auto _ : state) {
    Condensation cond = base;
    benchmark::DoNotOptimize(TransitiveReduce(&cond, options));
  }
}
BENCHMARK(BM_TransitiveReduce)
    ->Arg(static_cast<int>(ReductionStrategy::kDenseBitset))
    ->Arg(static_cast<int>(ReductionStrategy::kDfs))
    ->ArgNames({"strategy"});

void BM_IndexBuild(benchmark::State& state) {
  const bool reduce = state.range(0) != 0;
  CascadeIndexOptions options;
  options.num_worlds = 16;
  options.transitive_reduction = reduce;
  for (auto _ : state) {
    Rng rng(7);
    auto index = CascadeIndex::Build(TestGraph(), options, &rng);
    SOI_CHECK(index.ok());
    benchmark::DoNotOptimize(index->stats().approx_bytes);
  }
}
BENCHMARK(BM_IndexBuild)->Arg(0)->Arg(1)->ArgNames({"reduction"});

void BM_CascadeQueryViaIndex(benchmark::State& state) {
  CascadeIndexOptions options;
  options.num_worlds = 32;
  Rng rng(8);
  const auto index = CascadeIndex::Build(TestGraph(), options, &rng);
  SOI_CHECK(index.ok());
  CascadeIndex::Workspace ws;
  NodeId v = 0;
  uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->Cascade(v, i, &ws).value());
    v = (v + 911) % TestGraph().num_nodes();
    i = (i + 1) % index->num_worlds();
  }
}
BENCHMARK(BM_CascadeQueryViaIndex);

void BM_CascadeQueryDirectBfs(benchmark::State& state) {
  // The no-index alternative: re-materialize the world and BFS.
  std::vector<Csr> worlds;
  Rng rng(9);
  for (int i = 0; i < 32; ++i) worlds.push_back(SampleWorld(TestGraph(), &rng));
  NodeId v = 0;
  uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReachableFrom(worlds[i], v));
    v = (v + 911) % TestGraph().num_nodes();
    i = (i + 1) % worlds.size();
  }
}
BENCHMARK(BM_CascadeQueryDirectBfs);

// The typical-cascade sweep's hot kernel: extract all l cascades of a node
// into a reusable arena. closure=0 forces the per-query DAG traversal,
// closure=1 uses the memoized per-world reachability closure.
void BM_CascadeExtractAllWorlds(benchmark::State& state) {
  const bool closure = state.range(0) != 0;
  CascadeIndexOptions options;
  options.num_worlds = 64;
  options.closure_budget_mb = closure ? DefaultClosureBudgetMb() : 0;
  Rng rng(8);
  const auto index = CascadeIndex::Build(TestGraph(), options, &rng);
  SOI_CHECK(index.ok());
  SOI_CHECK(index->has_closure_cache() == closure);
  CascadeIndex::Workspace ws;
  CascadeIndex::CascadeArena arena;
  NodeId v = 0;
  uint64_t nodes_out = 0;
  for (auto _ : state) {
    const NodeId seeds[1] = {v};
    SOI_CHECK(index->AllCascadesInto(seeds, &ws, &arena).ok());
    benchmark::DoNotOptimize(arena.num_cascades());
    for (size_t c = 0; c < arena.num_cascades(); ++c) {
      nodes_out += arena.View(c).size();
    }
    v = (v + 911) % TestGraph().num_nodes();
  }
  state.SetItemsProcessed(static_cast<int64_t>(nodes_out));
}
BENCHMARK(BM_CascadeExtractAllWorlds)->Arg(0)->Arg(1)->ArgNames({"closure"});

void BM_JaccardMedian(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  CascadeIndexOptions options;
  options.num_worlds = 128;
  Rng rng(10);
  const auto index = CascadeIndex::Build(TestGraph(), options, &rng);
  SOI_CHECK(index.ok());
  CascadeIndex::Workspace ws;
  // A moderately influential node: pick the max out-degree one.
  NodeId best = 0;
  for (NodeId v = 0; v < TestGraph().num_nodes(); ++v) {
    if (TestGraph().OutDegree(v) > TestGraph().OutDegree(best)) best = v;
  }
  const auto cascades = index->AllCascades(best, &ws).value();
  JaccardMedianSolver solver(TestGraph().num_nodes());
  MedianOptions median;
  median.input_candidates = mode >= 1 ? 8 : 0;
  median.local_search = mode >= 2;
  for (auto _ : state) {
    auto result = solver.Compute(cascades, median);
    SOI_CHECK(result.ok());
    benchmark::DoNotOptimize(result->cost);
  }
}
BENCHMARK(BM_JaccardMedian)->Arg(0)->Arg(1)->Arg(2)->ArgNames({"mode"});

void BM_SketchOracleBuild(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  CascadeIndexOptions options;
  options.num_worlds = 16;
  Rng rng(12);
  const auto index = CascadeIndex::Build(TestGraph(), options, &rng);
  SOI_CHECK(index.ok());
  SketchOptions sketch;
  sketch.k = k;
  for (auto _ : state) {
    Rng build_rng(13);
    auto oracle = SketchSpreadOracle::Build(*index, sketch, &build_rng);
    SOI_CHECK(oracle.ok());
    benchmark::DoNotOptimize(oracle->total_sketch_entries());
  }
}
BENCHMARK(BM_SketchOracleBuild)->Arg(8)->Arg(32)->ArgNames({"k"});

// Ablation: sketch-based spread estimate vs exact DFS oracle.
void BM_SketchOracleQuery(benchmark::State& state) {
  CascadeIndexOptions options;
  options.num_worlds = 64;
  Rng rng(14);
  const auto index = CascadeIndex::Build(TestGraph(), options, &rng);
  SOI_CHECK(index.ok());
  SketchOptions sketch;
  sketch.k = 32;
  Rng build_rng(15);
  const auto oracle = SketchSpreadOracle::Build(*index, sketch, &build_rng);
  SOI_CHECK(oracle.ok());
  NodeId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle->EstimateSpread(v));
    v = (v + 131) % TestGraph().num_nodes();
  }
}
BENCHMARK(BM_SketchOracleQuery);

void BM_SpreadOracleGain(benchmark::State& state) {
  CascadeIndexOptions options;
  options.num_worlds = 64;
  Rng rng(11);
  const auto index = CascadeIndex::Build(TestGraph(), options, &rng);
  SOI_CHECK(index.ok());
  SpreadOracle oracle(&*index);
  NodeId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.MarginalGain(v));
    v = (v + 131) % TestGraph().num_nodes();
  }
}
BENCHMARK(BM_SpreadOracleGain);

// A mixed cascade/spread batch through the service Engine: the per-query
// cost of the query path the CLI `serve` mode exposes, against the one
// resident index (contrast with BM_IndexBuild — the rebuild every
// stand-alone CLI invocation pays).
service::Engine& BenchEngine() {
  static service::Engine* engine = [] {
    service::EngineOptions options;
    options.index.num_worlds = 64;
    auto e = service::Engine::Create(ProbGraph(TestGraph()), options);
    SOI_CHECK(e.ok());
    return new service::Engine(std::move(e).value());
  }();
  return *engine;
}

std::vector<service::Request> MixedBatch(uint32_t size, NodeId num_nodes) {
  std::vector<service::Request> requests;
  requests.reserve(size);
  for (uint32_t i = 0; i < size; ++i) {
    const NodeId v = (i * 131u) % num_nodes;
    service::Request r;
    if (i % 2 == 0) {
      r.payload = service::CascadeRequest{{v}, i % 64};
    } else {
      r.payload = service::SpreadRequest{{v}};
    }
    requests.push_back(std::move(r));
  }
  return requests;
}

void BM_EngineBatch(benchmark::State& state) {
  service::Engine& engine = BenchEngine();
  const auto requests = MixedBatch(static_cast<uint32_t>(state.range(0)),
                                   TestGraph().num_nodes());
  for (auto _ : state) {
    auto batch = engine.RunBatch(requests);
    SOI_CHECK(batch.ok());
    benchmark::DoNotOptimize(batch);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineBatch)->Arg(16)->Arg(256)->ArgNames({"batch"});

// Engine amortization numbers for BENCH_micro.json: one index build
// (what every stand-alone CLI query pays) vs the mean per-query latency of
// a mixed batch against the resident engine. The service layer's reason to
// exist is per_query_seconds << build_seconds.
struct EngineBatchNumbers {
  double build_seconds = 0.0;
  double per_query_seconds = 0.0;
  uint32_t batch_size = 0;
  double queries_per_rebuild = 0.0;
};

EngineBatchNumbers RunEngineBatchComparison() {
  EngineBatchNumbers out;
  service::EngineOptions options;
  options.index.num_worlds = 64;
  WallTimer build_timer;
  auto engine = service::Engine::Create(ProbGraph(TestGraph()), options);
  out.build_seconds = build_timer.ElapsedSeconds();
  SOI_CHECK(engine.ok());

  out.batch_size = 1024;
  const auto requests = MixedBatch(out.batch_size, TestGraph().num_nodes());
  SOI_CHECK(engine->RunBatch(requests).ok());  // warm-up
  constexpr uint32_t kRuns = 8;
  WallTimer batch_timer;
  for (uint32_t run = 0; run < kRuns; ++run) {
    const auto batch = engine->RunBatch(requests);
    SOI_CHECK(batch.ok());
  }
  out.per_query_seconds =
      batch_timer.ElapsedSeconds() / (kRuns * out.batch_size);
  out.queries_per_rebuild = out.build_seconds / out.per_query_seconds;
  return out;
}

// Times the full single-threaded ComputeAll sweep on both extraction paths
// (closure cache vs per-query traversal), checks the outputs are identical,
// and writes the speedup to BENCH_micro.json — the headline number of the
// closure-cache optimization, kept as a machine-readable artifact so the
// perf trajectory is trackable across commits.
void RunSweepComparison() {
  // A denser workload than TestGraph (cascades in the high hundreds of
  // nodes), matching the regime the paper sweeps its datasets in — this is
  // where per-query extraction cost, not the Jaccard median, dominates the
  // traversal baseline.
  Rng gen_rng(19);
  auto topo = GenerateRmat(12, 40000, {}, &gen_rng);
  SOI_CHECK(topo.ok());
  Rng assign_rng(20);
  auto graph = AssignUniform(*topo, &assign_rng, 0.05, 0.40);
  SOI_CHECK(graph.ok());
  const ProbGraph& g = *graph;
  const uint32_t prev_threads = GlobalThreads();
  SetGlobalThreads(1);

  CascadeIndexOptions options;
  options.num_worlds = 64;

  options.closure_budget_mb = 0;
  Rng rng_a(21);
  const auto traversal_index = CascadeIndex::Build(g, options, &rng_a);
  SOI_CHECK(traversal_index.ok() && !traversal_index->has_closure_cache());

  options.closure_budget_mb = DefaultClosureBudgetMb();
  Rng rng_b(21);
  const auto closure_index = CascadeIndex::Build(g, options, &rng_b);
  SOI_CHECK(closure_index.ok() && closure_index->has_closure_cache());

  WallTimer traversal_timer;
  TypicalCascadeComputer traversal_computer(&*traversal_index);
  const auto traversal_all = traversal_computer.ComputeAll();
  const double traversal_seconds = traversal_timer.ElapsedSeconds();
  SOI_CHECK(traversal_all.ok());

  WallTimer closure_timer;
  TypicalCascadeComputer closure_computer(&*closure_index);
  const auto closure_all = closure_computer.ComputeAll();
  const double closure_seconds = closure_timer.ElapsedSeconds();
  SOI_CHECK(closure_all.ok());

  SOI_CHECK(traversal_all->size() == closure_all->size());
  for (size_t v = 0; v < traversal_all->size(); ++v) {
    SOI_CHECK((*traversal_all)[v].cascade == (*closure_all)[v].cascade);
  }
  SetGlobalThreads(prev_threads);

  const double speedup = traversal_seconds / closure_seconds;
  const EngineBatchNumbers eb = RunEngineBatchComparison();
  std::FILE* f = std::fopen("BENCH_micro.json", "w");
  SOI_CHECK(f != nullptr);
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"soi-bench-micro-v1\",\n"
               "  \"sweep\": {\n"
               "    \"nodes\": %u,\n"
               "    \"worlds\": %u,\n"
               "    \"threads\": 1,\n"
               "    \"closure_cache_bytes\": %llu,\n"
               "    \"traversal_sweep_seconds\": %.6f,\n"
               "    \"closure_sweep_seconds\": %.6f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"outputs_identical\": true\n"
               "  },\n"
               "  \"engine_batch\": {\n"
               "    \"batch_size\": %u,\n"
               "    \"index_build_seconds\": %.6f,\n"
               "    \"per_query_seconds\": %.9f,\n"
               "    \"queries_per_rebuild\": %.1f\n"
               "  }\n"
               "}\n",
               g.num_nodes(), closure_index->num_worlds(),
               static_cast<unsigned long long>(
                   closure_index->stats().closure_bytes),
               traversal_seconds, closure_seconds, speedup, eb.batch_size,
               eb.build_seconds, eb.per_query_seconds, eb.queries_per_rebuild);
  std::fclose(f);
  std::printf("sweep: traversal %.3fs, closure %.3fs, speedup %.2fx "
              "(wrote BENCH_micro.json)\n",
              traversal_seconds, closure_seconds, speedup);
  std::printf("engine: build %.3fs, per-query %.1fus "
              "(%.0f queries per rebuild)\n",
              eb.build_seconds, eb.per_query_seconds * 1e6,
              eb.queries_per_rebuild);
}

}  // namespace
}  // namespace soi

// Expanded BENCHMARK_MAIN so the run can emit its metrics sidecar: the
// registry accumulates across all benchmark iterations, which makes the
// sidecar a phase-level complement to google-benchmark's per-op numbers.
int main(int argc, char** argv) {
  soi::WallTimer total_timer;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  soi::RunSweepComparison();
  benchmark::Shutdown();
  if (soi::obs::Enabled()) {
    const soi::Status ok = soi::obs::WriteMetricsJson(
        "BENCH_micro.metrics.json", total_timer.ElapsedSeconds());
    if (!ok.ok()) {
      std::fprintf(stderr, "metrics sidecar: %s\n", ok.ToString().c_str());
    } else {
      std::printf("wrote BENCH_micro.metrics.json\n");
    }
  }
  return 0;
}
