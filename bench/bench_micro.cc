// Component microbenchmarks and design-choice ablations (google-benchmark):
//   - possible-world sampling, Tarjan SCC, condensation build
//   - transitive reduction: dense-bitset vs DFS strategies (ablation)
//   - index construction with vs without transitive reduction (ablation)
//   - cascade query through the index vs direct BFS on a materialized world
//     (the paper's reason for the index)
//   - cascade extraction kernel: per-query DAG traversal vs the memoized
//     closure cache (the sweep's hot loop); a single-threaded ComputeAll
//     comparison of the two paths is also timed directly and recorded in
//     BENCH_micro.json
//   - Jaccard median: threshold sweep alone vs + input candidates vs
//     + local search (quality/time ablation)
//   - spread-oracle marginal-gain evaluation
//   - greedy seed selection: the shared cover engine (exact decrements +
//     lazy bucket queue) vs the legacy CELF heap and the legacy O(k*n)
//     rescan, over typical cascades (BM_InfMaxTC) and RR sets (BM_RrSelect);
//     single-threaded comparisons with in-process output-equality checks are
//     recorded in BENCH_micro.json ("infmax_select", "rr_select")

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <queue>

#include "cascade/world.h"
#include "core/typical_cascade.h"
#include "dynamic/dynamic_graph.h"
#include "dynamic/dynamic_index.h"
#include "gen/generators.h"
#include "graph/prob_assign.h"
#include "index/cascade_index.h"
#include "index/index_io.h"
#include "infmax/infmax_tc.h"
#include "infmax/rrset.h"
#include "infmax/sketch_oracle.h"
#include "infmax/spread_oracle.h"
#include "util/bitvector.h"
#include "jaccard/median.h"
#include "obs/metrics.h"
#include "runtime/parallel_for.h"
#include "scc/condensation.h"
#include "scc/tarjan.h"
#include "scc/transitive.h"
#include "service/engine.h"
#include "snapshot/reader.h"
#include "snapshot/writer.h"
#include "util/rng.h"
#include "util/stats.h"

namespace soi {
namespace {

const ProbGraph& TestGraph() {
  static const ProbGraph* graph = [] {
    Rng gen_rng(1);
    auto topo = GenerateRmat(12, 30000, {}, &gen_rng);
    SOI_CHECK(topo.ok());
    Rng assign_rng(2);
    auto g = AssignUniform(*topo, &assign_rng, 0.03, 0.25);
    SOI_CHECK(g.ok());
    return new ProbGraph(std::move(g).value());
  }();
  return *graph;
}

void BM_SampleWorld(benchmark::State& state) {
  const ProbGraph& g = TestGraph();
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleWorld(g, &rng));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_SampleWorld);

void BM_TarjanScc(benchmark::State& state) {
  Rng rng(4);
  const Csr world = SampleWorld(TestGraph(), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TarjanScc(world));
  }
}
BENCHMARK(BM_TarjanScc);

void BM_CondensationBuild(benchmark::State& state) {
  Rng rng(5);
  const Csr world = SampleWorld(TestGraph(), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Condensation::Build(world));
  }
}
BENCHMARK(BM_CondensationBuild);

void BM_TransitiveReduce(benchmark::State& state) {
  const auto strategy = static_cast<ReductionStrategy>(state.range(0));
  Rng rng(6);
  const Csr world = SampleWorld(TestGraph(), &rng);
  const Condensation base = Condensation::Build(world);
  ReductionOptions options;
  options.strategy = strategy;
  options.dense_limit = ~uint32_t{0};  // force dense when asked
  for (auto _ : state) {
    Condensation cond = base;
    benchmark::DoNotOptimize(TransitiveReduce(&cond, options));
  }
}
BENCHMARK(BM_TransitiveReduce)
    ->Arg(static_cast<int>(ReductionStrategy::kDenseBitset))
    ->Arg(static_cast<int>(ReductionStrategy::kDfs))
    ->ArgNames({"strategy"});

void BM_IndexBuild(benchmark::State& state) {
  const bool reduce = state.range(0) != 0;
  CascadeIndexOptions options;
  options.num_worlds = 16;
  options.transitive_reduction = reduce;
  for (auto _ : state) {
    Rng rng(7);
    auto index = CascadeIndex::Build(TestGraph(), options, &rng);
    SOI_CHECK(index.ok());
    benchmark::DoNotOptimize(index->stats().approx_bytes);
  }
}
BENCHMARK(BM_IndexBuild)->Arg(0)->Arg(1)->ArgNames({"reduction"});

void BM_CascadeQueryViaIndex(benchmark::State& state) {
  CascadeIndexOptions options;
  options.num_worlds = 32;
  Rng rng(8);
  const auto index = CascadeIndex::Build(TestGraph(), options, &rng);
  SOI_CHECK(index.ok());
  CascadeIndex::Workspace ws;
  NodeId v = 0;
  uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->Cascade(v, i, &ws).value());
    v = (v + 911) % TestGraph().num_nodes();
    i = (i + 1) % index->num_worlds();
  }
}
BENCHMARK(BM_CascadeQueryViaIndex);

void BM_CascadeQueryDirectBfs(benchmark::State& state) {
  // The no-index alternative: re-materialize the world and BFS.
  std::vector<Csr> worlds;
  Rng rng(9);
  for (int i = 0; i < 32; ++i) worlds.push_back(SampleWorld(TestGraph(), &rng));
  NodeId v = 0;
  uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReachableFrom(worlds[i], v));
    v = (v + 911) % TestGraph().num_nodes();
    i = (i + 1) % worlds.size();
  }
}
BENCHMARK(BM_CascadeQueryDirectBfs);

// The typical-cascade sweep's hot kernel: extract all l cascades of a node
// into a reusable arena. closure=0 forces the per-query DAG traversal,
// closure=1 uses the memoized per-world reachability closure.
void BM_CascadeExtractAllWorlds(benchmark::State& state) {
  const bool closure = state.range(0) != 0;
  CascadeIndexOptions options;
  options.num_worlds = 64;
  options.closure_budget_mb = closure ? DefaultClosureBudgetMb() : 0;
  Rng rng(8);
  const auto index = CascadeIndex::Build(TestGraph(), options, &rng);
  SOI_CHECK(index.ok());
  SOI_CHECK(index->has_closure_cache() == closure);
  CascadeIndex::Workspace ws;
  CascadeIndex::CascadeArena arena;
  NodeId v = 0;
  uint64_t nodes_out = 0;
  for (auto _ : state) {
    const NodeId seeds[1] = {v};
    SOI_CHECK(index->AllCascadesInto(seeds, &ws, &arena).ok());
    benchmark::DoNotOptimize(arena.num_cascades());
    for (size_t c = 0; c < arena.num_cascades(); ++c) {
      nodes_out += arena.View(c).size();
    }
    v = (v + 911) % TestGraph().num_nodes();
  }
  state.SetItemsProcessed(static_cast<int64_t>(nodes_out));
}
BENCHMARK(BM_CascadeExtractAllWorlds)->Arg(0)->Arg(1)->ArgNames({"closure"});

void BM_JaccardMedian(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  CascadeIndexOptions options;
  options.num_worlds = 128;
  Rng rng(10);
  const auto index = CascadeIndex::Build(TestGraph(), options, &rng);
  SOI_CHECK(index.ok());
  CascadeIndex::Workspace ws;
  // A moderately influential node: pick the max out-degree one.
  NodeId best = 0;
  for (NodeId v = 0; v < TestGraph().num_nodes(); ++v) {
    if (TestGraph().OutDegree(v) > TestGraph().OutDegree(best)) best = v;
  }
  const auto cascades = index->AllCascades(best, &ws).value();
  JaccardMedianSolver solver(TestGraph().num_nodes());
  MedianOptions median;
  median.input_candidates = mode >= 1 ? 8 : 0;
  median.local_search = mode >= 2;
  for (auto _ : state) {
    auto result = solver.Compute(cascades, median);
    SOI_CHECK(result.ok());
    benchmark::DoNotOptimize(result->cost);
  }
}
BENCHMARK(BM_JaccardMedian)->Arg(0)->Arg(1)->Arg(2)->ArgNames({"mode"});

void BM_SketchOracleBuild(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  CascadeIndexOptions options;
  options.num_worlds = 16;
  Rng rng(12);
  const auto index = CascadeIndex::Build(TestGraph(), options, &rng);
  SOI_CHECK(index.ok());
  SketchOptions sketch;
  sketch.k = k;
  for (auto _ : state) {
    Rng build_rng(13);
    auto oracle = SketchSpreadOracle::Build(*index, sketch, &build_rng);
    SOI_CHECK(oracle.ok());
    benchmark::DoNotOptimize(oracle->total_sketch_entries());
  }
}
BENCHMARK(BM_SketchOracleBuild)->Arg(8)->Arg(32)->ArgNames({"k"});

// Ablation: sketch-based spread estimate vs exact DFS oracle.
void BM_SketchOracleQuery(benchmark::State& state) {
  CascadeIndexOptions options;
  options.num_worlds = 64;
  Rng rng(14);
  const auto index = CascadeIndex::Build(TestGraph(), options, &rng);
  SOI_CHECK(index.ok());
  SketchOptions sketch;
  sketch.k = 32;
  Rng build_rng(15);
  const auto oracle = SketchSpreadOracle::Build(*index, sketch, &build_rng);
  SOI_CHECK(oracle.ok());
  NodeId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle->EstimateSpread(v));
    v = (v + 131) % TestGraph().num_nodes();
  }
}
BENCHMARK(BM_SketchOracleQuery);

void BM_SpreadOracleGain(benchmark::State& state) {
  CascadeIndexOptions options;
  options.num_worlds = 64;
  Rng rng(11);
  const auto index = CascadeIndex::Build(TestGraph(), options, &rng);
  SOI_CHECK(index.ok());
  SpreadOracle oracle(&*index);
  NodeId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.MarginalGain(v));
    v = (v + 131) % TestGraph().num_nodes();
  }
}
BENCHMARK(BM_SpreadOracleGain);

// ----------------------------------------------------------------------
// Greedy seed selection: cover engine vs the legacy loops it replaced.
// The legacy implementations are kept verbatim here (and in
// tests/cover_engine_test.cc) as the baseline and correctness reference.
// ----------------------------------------------------------------------

uint64_t LegacyCoverageGain(const std::vector<NodeId>& cascade,
                            const BitVector& covered) {
  uint64_t gain = 0;
  for (NodeId v : cascade) gain += covered.Test(v) ? 0 : 1;
  return gain;
}

struct LegacyCelfEntry {
  uint64_t gain;
  NodeId node;
  uint32_t round;
};

struct LegacyCelfLess {
  bool operator()(const LegacyCelfEntry& a, const LegacyCelfEntry& b) const {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.node > b.node;
  }
};

// The pre-engine InfMaxTC selection loops: CELF heap or exhaustive rescan.
// Includes the per-element input validation pass the legacy entry point ran
// on every call, so timings compare full call against full call.
GreedyResult LegacyTcSelect(const std::vector<std::vector<NodeId>>& cascades,
                            NodeId num_nodes, uint32_t k, bool use_celf) {
  for (const auto& c : cascades) {
    for (NodeId v : c) SOI_CHECK(v < num_nodes);
  }
  GreedyResult result;
  BitVector covered(num_nodes);
  uint64_t total_covered = 0;
  if (!use_celf) {
    BitVector selected(num_nodes);
    for (uint32_t round = 0; round < k; ++round) {
      NodeId best = kInvalidNode;
      uint64_t best_gain = 0;
      bool have_best = false;
      for (NodeId v = 0; v < num_nodes; ++v) {
        if (selected.Test(v)) continue;
        const uint64_t g = LegacyCoverageGain(cascades[v], covered);
        if (!have_best || g > best_gain) {
          have_best = true;
          best_gain = g;
          best = v;
        }
      }
      selected.Set(best);
      for (NodeId v : cascades[best]) covered.Set(v);
      total_covered += best_gain;
      result.seeds.push_back(best);
      result.steps.push_back({best, static_cast<double>(best_gain),
                              static_cast<double>(total_covered), -1.0});
    }
    return result;
  }
  std::priority_queue<LegacyCelfEntry, std::vector<LegacyCelfEntry>,
                      LegacyCelfLess>
      heap;
  for (NodeId v = 0; v < num_nodes; ++v) {
    heap.push({LegacyCoverageGain(cascades[v], covered), v, 0});
  }
  for (uint32_t round = 1; round <= k && !heap.empty(); ++round) {
    while (true) {
      LegacyCelfEntry top = heap.top();
      if (top.round == round) {
        heap.pop();
        for (NodeId v : cascades[top.node]) covered.Set(v);
        total_covered += top.gain;
        result.seeds.push_back(top.node);
        result.steps.push_back({top.node, static_cast<double>(top.gain),
                                static_cast<double>(total_covered), -1.0});
        break;
      }
      heap.pop();
      top.gain = LegacyCoverageGain(cascades[top.node], covered);
      top.round = round;
      heap.push(top);
    }
  }
  return result;
}

// The pre-engine RrCollection::SelectSeeds (exact cover counters + full
// O(n) argmax rescan per round), rebuilt on the collection's public views.
GreedyResult LegacyRrSelect(const RrCollection& collection, uint32_t k) {
  const NodeId n = collection.num_nodes();
  const uint32_t num_sets = collection.num_sets();
  const double scale = static_cast<double>(n) / static_cast<double>(num_sets);
  std::vector<uint64_t> cover_count(n, 0);
  for (uint32_t i = 0; i < num_sets; ++i) {
    for (NodeId v : collection.Set(i)) ++cover_count[v];
  }
  std::vector<uint8_t> set_covered(num_sets, 0);
  std::vector<uint8_t> selected(n, 0);
  GreedyResult result;
  uint64_t covered_total = 0;
  for (uint32_t round = 0; round < k; ++round) {
    NodeId best = kInvalidNode;
    uint64_t best_count = 0;
    bool have_best = false;
    for (NodeId v = 0; v < n; ++v) {
      if (selected[v]) continue;
      if (!have_best || cover_count[v] > best_count) {
        have_best = true;
        best_count = cover_count[v];
        best = v;
      }
    }
    selected[best] = 1;
    for (uint32_t set_id : collection.inverted().Set(best)) {
      if (set_covered[set_id]) continue;
      set_covered[set_id] = 1;
      for (NodeId v : collection.Set(set_id)) --cover_count[v];
    }
    covered_total += best_count;
    result.seeds.push_back(best);
    result.steps.push_back({best, static_cast<double>(best_count) * scale,
                            static_cast<double>(covered_total) * scale, -1.0});
  }
  return result;
}

// Synthetic typical-cascade workload in the regime the acceptance numbers
// quote: n = 4096 candidates, mean cascade length ~64 (uniform 32..96,
// deduplicated), cascade of v always contains v.
struct SelectWorkload {
  std::vector<std::vector<NodeId>> nested;
  FlatSets flat;
  NodeId num_nodes = 0;
};

const SelectWorkload& InfMaxWorkload() {
  static const SelectWorkload* workload = [] {
    auto* w = new SelectWorkload;
    constexpr NodeId kN = 4096;
    w->num_nodes = kN;
    w->nested.resize(kN);
    Rng rng(23);
    for (NodeId v = 0; v < kN; ++v) {
      auto& c = w->nested[v];
      const uint32_t len = 32 + static_cast<uint32_t>(rng.NextBounded(65));
      c.push_back(v);
      for (uint32_t i = 1; i < len; ++i) {
        c.push_back(static_cast<NodeId>(rng.NextBounded(kN)));
      }
      std::sort(c.begin(), c.end());
      c.erase(std::unique(c.begin(), c.end()), c.end());
    }
    w->flat = FlatSets::FromNested(w->nested);
    return w;
  }();
  return *workload;
}

// variant: 0 = cover engine, 1 = legacy CELF, 2 = legacy rescan.
void BM_InfMaxTC(benchmark::State& state) {
  const int variant = static_cast<int>(state.range(0));
  const SelectWorkload& w = InfMaxWorkload();
  constexpr uint32_t kK = 256;
  InfMaxTcOptions options;
  options.k = kK;
  for (auto _ : state) {
    if (variant == 0) {
      const auto result = InfMaxTC(w.flat, w.num_nodes, options);
      SOI_CHECK(result.ok());
      benchmark::DoNotOptimize(result->seeds.size());
    } else {
      benchmark::DoNotOptimize(
          LegacyTcSelect(w.nested, w.num_nodes, kK, variant == 1)
              .seeds.size());
    }
  }
}
BENCHMARK(BM_InfMaxTC)->Arg(0)->Arg(1)->Arg(2)->ArgNames({"variant"});

const RrCollection& RrWorkload() {
  static const RrCollection* collection = [] {
    Rng rng(29);
    auto c = RrCollection::Sample(TestGraph(), 16384, &rng);
    SOI_CHECK(c.ok());
    return new RrCollection(std::move(c).value());
  }();
  return *collection;
}

// variant: 0 = cover engine, 1 = legacy rescan.
void BM_RrSelect(benchmark::State& state) {
  const int variant = static_cast<int>(state.range(0));
  const RrCollection& collection = RrWorkload();
  constexpr uint32_t kK = 64;
  for (auto _ : state) {
    if (variant == 0) {
      const auto result = collection.SelectSeeds(kK);
      SOI_CHECK(result.ok());
      benchmark::DoNotOptimize(result->seeds.size());
    } else {
      benchmark::DoNotOptimize(LegacyRrSelect(collection, kK).seeds.size());
    }
  }
}
BENCHMARK(BM_RrSelect)->Arg(0)->Arg(1)->ArgNames({"variant"});

// A mixed cascade/spread batch through the service Engine: the per-query
// cost of the query path the CLI `serve` mode exposes, against the one
// resident index (contrast with BM_IndexBuild — the rebuild every
// stand-alone CLI invocation pays).
service::Engine& BenchEngine() {
  static service::Engine* engine = [] {
    service::EngineOptions options;
    options.index.num_worlds = 64;
    auto e = service::Engine::Create(ProbGraph(TestGraph()), options);
    SOI_CHECK(e.ok());
    return new service::Engine(std::move(e).value());
  }();
  return *engine;
}

std::vector<service::Request> MixedBatch(uint32_t size, NodeId num_nodes) {
  std::vector<service::Request> requests;
  requests.reserve(size);
  for (uint32_t i = 0; i < size; ++i) {
    const NodeId v = (i * 131u) % num_nodes;
    service::Request r;
    if (i % 2 == 0) {
      r.payload = service::CascadeRequest{{v}, i % 64};
    } else {
      r.payload = service::SpreadRequest{{v}};
    }
    requests.push_back(std::move(r));
  }
  return requests;
}

void BM_EngineBatch(benchmark::State& state) {
  service::Engine& engine = BenchEngine();
  const auto requests = MixedBatch(static_cast<uint32_t>(state.range(0)),
                                   TestGraph().num_nodes());
  for (auto _ : state) {
    auto batch = engine.RunBatch(requests);
    SOI_CHECK(batch.ok());
    benchmark::DoNotOptimize(batch);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineBatch)->Arg(16)->Arg(256)->ArgNames({"batch"});

// Engine amortization numbers for BENCH_micro.json: one index build
// (what every stand-alone CLI query pays) vs the mean per-query latency of
// a mixed batch against the resident engine. The service layer's reason to
// exist is per_query_seconds << build_seconds.
struct EngineBatchNumbers {
  double build_seconds = 0.0;
  double per_query_seconds = 0.0;
  uint32_t batch_size = 0;
  double queries_per_rebuild = 0.0;
};

EngineBatchNumbers RunEngineBatchComparison() {
  EngineBatchNumbers out;
  service::EngineOptions options;
  options.index.num_worlds = 64;
  WallTimer build_timer;
  auto engine = service::Engine::Create(ProbGraph(TestGraph()), options);
  out.build_seconds = build_timer.ElapsedSeconds();
  SOI_CHECK(engine.ok());

  out.batch_size = 1024;
  const auto requests = MixedBatch(out.batch_size, TestGraph().num_nodes());
  SOI_CHECK(engine->RunBatch(requests).ok());  // warm-up
  constexpr uint32_t kRuns = 8;
  WallTimer batch_timer;
  for (uint32_t run = 0; run < kRuns; ++run) {
    const auto batch = engine->RunBatch(requests);
    SOI_CHECK(batch.ok());
  }
  out.per_query_seconds =
      batch_timer.ElapsedSeconds() / (kRuns * out.batch_size);
  out.queries_per_rebuild = out.build_seconds / out.per_query_seconds;
  return out;
}

// Single-threaded selection comparisons for BENCH_micro.json: the cover
// engine vs the legacy CELF heap and the legacy rescan, with the outputs
// checked bit-identical in-process (seeds and every GreedyStepInfo field).
struct StepEquality {
  static bool Same(const GreedyResult& a, const GreedyResult& b) {
    if (a.seeds != b.seeds || a.steps.size() != b.steps.size()) return false;
    for (size_t i = 0; i < a.steps.size(); ++i) {
      if (a.steps[i].node != b.steps[i].node ||
          a.steps[i].marginal_gain != b.steps[i].marginal_gain ||
          a.steps[i].objective_after != b.steps[i].objective_after) {
        return false;
      }
    }
    return true;
  }
};

template <typename Fn>
double BestOfThreeSeconds(Fn&& fn) {
  double best = 0.0;
  for (int run = 0; run < 3; ++run) {
    WallTimer timer;
    fn();
    const double seconds = timer.ElapsedSeconds();
    if (run == 0 || seconds < best) best = seconds;
  }
  return best;
}

struct InfMaxSelectNumbers {
  uint32_t num_nodes = 0;
  uint32_t k = 0;
  double engine_seconds = 0.0;
  double celf_seconds = 0.0;
  double rescan_seconds = 0.0;
  double speedup_vs_celf = 0.0;
  double speedup_vs_rescan = 0.0;
};

InfMaxSelectNumbers RunInfMaxSelectComparison() {
  InfMaxSelectNumbers out;
  const SelectWorkload& w = InfMaxWorkload();
  out.num_nodes = w.num_nodes;
  out.k = 256;
  InfMaxTcOptions options;
  options.k = out.k;

  const auto engine_result = InfMaxTC(w.flat, w.num_nodes, options);
  SOI_CHECK(engine_result.ok());
  SOI_CHECK(StepEquality::Same(
      *engine_result, LegacyTcSelect(w.nested, w.num_nodes, out.k, true)));
  SOI_CHECK(StepEquality::Same(
      *engine_result, LegacyTcSelect(w.nested, w.num_nodes, out.k, false)));

  out.engine_seconds = BestOfThreeSeconds([&] {
    benchmark::DoNotOptimize(InfMaxTC(w.flat, w.num_nodes, options)->seeds);
  });
  out.celf_seconds = BestOfThreeSeconds([&] {
    benchmark::DoNotOptimize(
        LegacyTcSelect(w.nested, w.num_nodes, out.k, true).seeds);
  });
  out.rescan_seconds = BestOfThreeSeconds([&] {
    benchmark::DoNotOptimize(
        LegacyTcSelect(w.nested, w.num_nodes, out.k, false).seeds);
  });
  out.speedup_vs_celf = out.celf_seconds / out.engine_seconds;
  out.speedup_vs_rescan = out.rescan_seconds / out.engine_seconds;
  return out;
}

struct RrSelectNumbers {
  uint32_t num_sets = 0;
  uint32_t k = 0;
  double engine_seconds = 0.0;
  double rescan_seconds = 0.0;
  double speedup_vs_rescan = 0.0;
};

RrSelectNumbers RunRrSelectComparison() {
  RrSelectNumbers out;
  const RrCollection& collection = RrWorkload();
  out.num_sets = collection.num_sets();
  out.k = 64;

  const auto engine_result = collection.SelectSeeds(out.k);
  SOI_CHECK(engine_result.ok());
  SOI_CHECK(
      StepEquality::Same(*engine_result, LegacyRrSelect(collection, out.k)));

  out.engine_seconds = BestOfThreeSeconds([&] {
    benchmark::DoNotOptimize(collection.SelectSeeds(out.k)->seeds);
  });
  out.rescan_seconds = BestOfThreeSeconds([&] {
    benchmark::DoNotOptimize(LegacyRrSelect(collection, out.k).seeds);
  });
  out.speedup_vs_rescan = out.rescan_seconds / out.engine_seconds;
  return out;
}

// Cold-start-to-first-query numbers for BENCH_micro.json: the legacy
// restart path (LoadCascadeIndex parse + closure rebuild, then one query)
// vs the snapshot path (mmap + structural validation + pointer fixup, then
// the same query — the closure cache is read, never rebuilt). Also records
// snapshot create time and file size vs the index's in-memory footprint.
struct SnapshotRestartNumbers {
  double create_seconds = 0.0;
  double legacy_restart_seconds = 0.0;
  double snapshot_restart_seconds = 0.0;
  double speedup = 0.0;
  uint64_t snapshot_file_bytes = 0;
  uint64_t index_file_bytes = 0;
  uint64_t index_approx_bytes = 0;
};

uint64_t FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  SOI_CHECK(f != nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  SOI_CHECK(size >= 0);
  return static_cast<uint64_t>(size);
}

SnapshotRestartNumbers RunSnapshotRestartComparison() {
  SnapshotRestartNumbers out;
  const ProbGraph& g = TestGraph();
  CascadeIndexOptions options;
  options.num_worlds = 64;
  Rng rng(31);
  const auto index = CascadeIndex::Build(g, options, &rng);
  SOI_CHECK(index.ok() && index->has_closure_cache());
  TypicalCascadeComputer computer(&*index);
  const auto sweep = computer.ComputeAllFlat();
  SOI_CHECK(sweep.ok());
  out.index_approx_bytes = index->stats().approx_bytes;

  const std::string idx_path = "BENCH_restart.soiidx";
  const std::string snap_path = "BENCH_restart.soisnap";
  SOI_CHECK(SaveCascadeIndex(*index, idx_path).ok());
  WallTimer create_timer;
  SnapshotWriteOptions write_options;
  write_options.typical = &sweep->cascades;
  SOI_CHECK(WriteSnapshot(g, *index, snap_path, write_options).ok());
  out.create_seconds = create_timer.ElapsedSeconds();
  out.snapshot_file_bytes = FileBytes(snap_path);
  out.index_file_bytes = FileBytes(idx_path);

  // The first query both restart paths must answer. Both paths run against
  // a warm page cache (each timed run re-opens the file), so the comparison
  // isolates parse/rebuild work, not disk.
  const NodeId probe = 42 % g.num_nodes();
  const auto reference = [&] {
    CascadeIndex::Workspace ws;
    return index->Cascade(probe, 0, &ws).value();
  }();

  out.legacy_restart_seconds = BestOfThreeSeconds([&] {
    const auto loaded = LoadCascadeIndex(idx_path);
    SOI_CHECK(loaded.ok() && loaded->has_closure_cache());
    CascadeIndex::Workspace ws;
    SOI_CHECK(loaded->Cascade(probe, 0, &ws).value() == reference);
  });
  out.snapshot_restart_seconds = BestOfThreeSeconds([&] {
    const auto snap = Snapshot::Open(snap_path);
    SOI_CHECK(snap.ok());
    auto borrowed = (*snap)->MakeIndex();
    SOI_CHECK(borrowed.ok() && borrowed->has_closure_cache());
    CascadeIndex::Workspace ws;
    SOI_CHECK(borrowed->Cascade(probe, 0, &ws).value() == reference);
  });
  out.speedup = out.legacy_restart_seconds / out.snapshot_restart_seconds;
  std::remove(idx_path.c_str());
  std::remove(snap_path.c_str());
  return out;
}

// Incremental maintenance numbers for BENCH_micro.json (n=4096, l=64): the
// mean single-edge update latency through DynamicIndex::ApplyUpdates vs the
// full keyed rebuild the update replaces — the reason src/dynamic/ exists —
// plus the sustained queries/sec of a dynamic engine under a mixed
// update+query stream. Every update's effect is provably byte-identical to
// that rebuild (tests/dynamic_fuzz_test.cc), so this compares equal work.
struct UpdateStreamNumbers {
  uint32_t nodes = 0;
  uint32_t worlds = 0;
  uint32_t updates = 0;
  double per_update_seconds = 0.0;
  double rebuild_seconds = 0.0;
  double speedup = 0.0;
  double mixed_queries_per_second = 0.0;
  uint32_t mixed_queries = 0;
  uint32_t mixed_updates = 0;
};

UpdateStreamNumbers RunUpdateStreamComparison() {
  UpdateStreamNumbers out;
  Rng gen_rng(31);
  auto topo = GenerateRmat(12, 16384, {}, &gen_rng);
  SOI_CHECK(topo.ok());
  Rng assign_rng(32);
  auto graph = AssignUniform(*topo, &assign_rng, 0.03, 0.25);
  SOI_CHECK(graph.ok());
  out.nodes = graph->num_nodes();

  CascadeIndexOptions options;
  options.num_worlds = 64;
  out.worlds = options.num_worlds;
  auto dynamic = DynamicIndex::Build(*graph, options, /*seed=*/7);
  SOI_CHECK(dynamic.ok());

  // The update stream: toggle reserved arcs (v, v+97) absent from the RMAT
  // sample, plus periodic re-weights — the insert/delete/prob mix a learned
  // edge-probability pipeline emits. Every op is a single-edge batch, which
  // is the latency the serving story quotes.
  const auto make_op = [&](uint32_t i, bool present) {
    GraphUpdate op;
    op.src = static_cast<NodeId>((i * 131u) % out.nodes);
    op.dst = static_cast<NodeId>((op.src + 97u) % out.nodes);
    if (!present) {
      op.kind = UpdateKind::kEdgeInsert;
      // Low-probability arcs, the regime learned edge probabilities live
      // in. A keyed world resamples only when its coin for this arc lands
      // under p, so E[affected worlds] = p * l — the whole reason a single
      // update is a fraction of a rebuild.
      op.prob = 0.03 + 0.0002 * (i % 100);
    } else {
      op.kind = UpdateKind::kEdgeDelete;
    }
    return op;
  };
  // Skip slots whose reserved arc happens to exist in the base graph.
  std::vector<bool> usable(64, true);
  for (uint32_t i = 0; i < 64; ++i) {
    const GraphUpdate probe = make_op(i, false);
    if (dynamic->graph().HasEdge(probe.src, probe.dst)) usable[i] = false;
  }
  out.updates = 0;
  WallTimer update_timer;
  for (uint32_t round = 0; round < 2; ++round) {  // insert pass, delete pass
    for (uint32_t i = 0; i < 64; ++i) {
      if (!usable[i]) continue;
      const GraphUpdate op = make_op(i, round == 1);
      const auto stats =
          dynamic->ApplyUpdates(std::span<const GraphUpdate>(&op, 1));
      SOI_CHECK(stats.ok());
      ++out.updates;
    }
  }
  out.per_update_seconds = update_timer.ElapsedSeconds() / out.updates;

  // The rebuild each of those updates replaced (the two end states are
  // identical graphs, so any iteration is representative).
  auto materialized = dynamic->MaterializeGraph();
  SOI_CHECK(materialized.ok());
  WallTimer rebuild_timer;
  auto rebuilt = DynamicIndex::Build(*materialized, options, /*seed=*/7);
  out.rebuild_seconds = rebuild_timer.ElapsedSeconds();
  SOI_CHECK(rebuilt.ok());
  out.speedup = out.rebuild_seconds / out.per_update_seconds;

  // Mixed stream through the service facade: 1 update per 16 queries, the
  // queries answered from the incrementally patched index.
  service::EngineOptions engine_options;
  engine_options.index = options;
  engine_options.seed = 7;
  auto engine =
      service::Engine::CreateDynamic(std::move(*materialized), engine_options);
  SOI_CHECK(engine.ok());
  const auto queries = MixedBatch(16, out.nodes);
  constexpr uint32_t kMixedRounds = 64;
  WallTimer mixed_timer;
  for (uint32_t round = 0; round < kMixedRounds; ++round) {
    // Each usable reserved arc is absent after the delete pass above, so
    // one insert per slot is valid exactly once.
    if (usable[round]) {
      service::Request update;
      update.payload = service::UpdateRequest{{make_op(round, false)}};
      SOI_CHECK(engine->Run(update).ok());
      ++out.mixed_updates;
    }
    const auto batch = engine->RunBatch(queries);
    SOI_CHECK(batch.ok());
    out.mixed_queries += static_cast<uint32_t>(queries.size());
  }
  out.mixed_queries_per_second =
      out.mixed_queries / mixed_timer.ElapsedSeconds();
  return out;
}

// Scale ceiling under a fixed memory budget (the tier hierarchy's headline
// number): the largest n in a doubling RMAT family (~10 arcs/node, p in
// [0.05, 0.40]) whose per-world reachability state is fully admitted under
// 512 MiB by the legacy materialized-only policy vs the tiered auto policy,
// plus the labels-vs-materialized sweep latency ratio at the base scale
// with an in-process byte-equality check (the tier contract).
struct ScaleNNumbers {
  uint32_t worlds = 0;
  uint64_t budget_bytes = 0;
  uint32_t max_n_materialized = 0;
  uint32_t max_n_auto = 0;
  // The auto policy was still fully admitted at the largest size tried, so
  // max_n_auto is a lower bound, not a ceiling.
  bool auto_hit_doubling_cap = false;
  uint64_t mat_bytes_per_world = 0;    // base scale, fully materialized
  uint64_t label_bytes_per_world = 0;  // the same worlds re-tiered to labels
  double materialized_sweep_seconds = 0.0;
  double labels_sweep_seconds = 0.0;
  double latency_ratio = 0.0;  // labels / materialized
  uint64_t worlds_built = 0;
};

ScaleNNumbers RunScaleNComparison() {
  constexpr uint32_t kMinScale = 12;  // n = 4096, the sweep's regime
  constexpr uint32_t kMaxScale = 16;  // n = 65536, the CI smoke's regime
  ScaleNNumbers out;
  out.worlds = 16;
  out.budget_bytes = 512ull << 20;

  // Seeds derive from the scale only, so the two policies price exactly the
  // same worlds at each size — the comparison isolates the policy.
  const auto build_at = [&out](uint32_t scale, ClosureTierPolicy policy) {
    Rng gen_rng(100 + scale);
    auto topo = GenerateRmat(scale, 10ull << scale, {}, &gen_rng);
    SOI_CHECK(topo.ok());
    Rng assign_rng(200 + scale);
    auto graph = AssignUniform(*topo, &assign_rng, 0.05, 0.40);
    SOI_CHECK(graph.ok());
    CascadeIndexOptions options;
    options.num_worlds = out.worlds;
    options.closure_budget_mb = out.budget_bytes >> 20;
    options.tier_policy = policy;
    Rng rng(300 + scale);
    auto index = CascadeIndex::Build(*graph, options, &rng);
    SOI_CHECK(index.ok());
    out.worlds_built += index->num_worlds();
    return std::move(index).value();
  };

  // Admission ceilings: materialized-only is all-or-nothing, so it is
  // admitted iff every world materialized; auto is admitted while no world
  // falls all the way to the traversal tier.
  for (uint32_t scale = kMinScale; scale <= kMaxScale; ++scale) {
    const CascadeIndex index =
        build_at(scale, ClosureTierPolicy::kMaterialized);
    if (index.stats().worlds_materialized != out.worlds) break;
    out.max_n_materialized = 1u << scale;
  }
  for (uint32_t scale = kMinScale; scale <= kMaxScale; ++scale) {
    const CascadeIndex index = build_at(scale, ClosureTierPolicy::kAuto);
    if (index.stats().worlds_traversal != 0) break;
    out.max_n_auto = 1u << scale;
    out.auto_hit_doubling_cap = scale == kMaxScale;
  }

  // Latency ratio at the base scale: one index, re-tiered in place between
  // sweeps, so both runs extract from identical worlds.
  CascadeIndex index = build_at(kMinScale, ClosureTierPolicy::kMaterialized);
  SOI_CHECK(index.stats().worlds_materialized == out.worlds);
  out.mat_bytes_per_world = index.stats().closure_bytes / out.worlds;
  const uint32_t prev_threads = GlobalThreads();
  SetGlobalThreads(1);
  WallTimer mat_timer;
  TypicalCascadeComputer mat_computer(&index);
  const auto mat_all = mat_computer.ComputeAll();
  out.materialized_sweep_seconds = mat_timer.ElapsedSeconds();
  SOI_CHECK(mat_all.ok());

  index.RebuildClosureTiersBytes(out.budget_bytes,
                                 ClosureTierPolicy::kLabels);
  SOI_CHECK(index.stats().worlds_labeled == out.worlds);
  out.label_bytes_per_world = index.stats().label_bytes / out.worlds;
  WallTimer lab_timer;
  TypicalCascadeComputer lab_computer(&index);
  const auto lab_all = lab_computer.ComputeAll();
  out.labels_sweep_seconds = lab_timer.ElapsedSeconds();
  SOI_CHECK(lab_all.ok());
  SetGlobalThreads(prev_threads);

  SOI_CHECK(mat_all->size() == lab_all->size());
  for (size_t v = 0; v < mat_all->size(); ++v) {
    SOI_CHECK((*mat_all)[v].cascade == (*lab_all)[v].cascade);
  }
  out.latency_ratio =
      out.labels_sweep_seconds / out.materialized_sweep_seconds;
  return out;
}

// Times the full single-threaded ComputeAll sweep on both extraction paths
// (closure cache vs per-query traversal), checks the outputs are identical,
// and writes the speedup to BENCH_micro.json — the headline number of the
// closure-cache optimization, kept as a machine-readable artifact so the
// perf trajectory is trackable across commits.
void RunSweepComparison() {
  // A denser workload than TestGraph (cascades in the high hundreds of
  // nodes), matching the regime the paper sweeps its datasets in — this is
  // where per-query extraction cost, not the Jaccard median, dominates the
  // traversal baseline.
  Rng gen_rng(19);
  auto topo = GenerateRmat(12, 40000, {}, &gen_rng);
  SOI_CHECK(topo.ok());
  Rng assign_rng(20);
  auto graph = AssignUniform(*topo, &assign_rng, 0.05, 0.40);
  SOI_CHECK(graph.ok());
  const ProbGraph& g = *graph;
  const uint32_t prev_threads = GlobalThreads();
  SetGlobalThreads(1);

  CascadeIndexOptions options;
  options.num_worlds = 64;

  options.closure_budget_mb = 0;
  Rng rng_a(21);
  const auto traversal_index = CascadeIndex::Build(g, options, &rng_a);
  SOI_CHECK(traversal_index.ok() && !traversal_index->has_closure_cache());

  options.closure_budget_mb = DefaultClosureBudgetMb();
  Rng rng_b(21);
  const auto closure_index = CascadeIndex::Build(g, options, &rng_b);
  SOI_CHECK(closure_index.ok() && closure_index->has_closure_cache());

  WallTimer traversal_timer;
  TypicalCascadeComputer traversal_computer(&*traversal_index);
  const auto traversal_all = traversal_computer.ComputeAll();
  const double traversal_seconds = traversal_timer.ElapsedSeconds();
  SOI_CHECK(traversal_all.ok());

  WallTimer closure_timer;
  TypicalCascadeComputer closure_computer(&*closure_index);
  const auto closure_all = closure_computer.ComputeAll();
  const double closure_seconds = closure_timer.ElapsedSeconds();
  SOI_CHECK(closure_all.ok());

  SOI_CHECK(traversal_all->size() == closure_all->size());
  for (size_t v = 0; v < traversal_all->size(); ++v) {
    SOI_CHECK((*traversal_all)[v].cascade == (*closure_all)[v].cascade);
  }

  // Selection comparisons run inside the same single-thread window so the
  // engine's parallel gain init doesn't flatter it against the serial
  // legacy loops.
  const InfMaxSelectNumbers is = RunInfMaxSelectComparison();
  const RrSelectNumbers rs = RunRrSelectComparison();
  SetGlobalThreads(prev_threads);

  const double speedup = traversal_seconds / closure_seconds;
  const EngineBatchNumbers eb = RunEngineBatchComparison();
  const SnapshotRestartNumbers sn = RunSnapshotRestartComparison();
  const UpdateStreamNumbers us = RunUpdateStreamComparison();
  const ScaleNNumbers sc = RunScaleNComparison();
  // Peak RSS (VmHWM) amortized over the worlds this comparison suite
  // sampled (the google-benchmark phase builds are excluded from the
  // denominator but not the peak — VmHWM is process-wide).
  const uint64_t suite_worlds = traversal_index->num_worlds() +
                                closure_index->num_worlds() + sc.worlds_built;
  const uint64_t peak_rss_bytes = obs::ReadMemoryStats().high_water_bytes;
  const uint64_t bytes_per_world =
      suite_worlds == 0 ? 0 : peak_rss_bytes / suite_worlds;
  std::FILE* f = std::fopen("BENCH_micro.json", "w");
  SOI_CHECK(f != nullptr);
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"soi-bench-micro-v1\",\n"
               "  \"sweep\": {\n"
               "    \"nodes\": %u,\n"
               "    \"worlds\": %u,\n"
               "    \"threads\": 1,\n"
               "    \"closure_cache_bytes\": %llu,\n"
               "    \"traversal_sweep_seconds\": %.6f,\n"
               "    \"closure_sweep_seconds\": %.6f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"outputs_identical\": true\n"
               "  },\n"
               "  \"engine_batch\": {\n"
               "    \"batch_size\": %u,\n"
               "    \"index_build_seconds\": %.6f,\n"
               "    \"per_query_seconds\": %.9f,\n"
               "    \"queries_per_rebuild\": %.1f\n"
               "  },\n"
               "  \"infmax_select\": {\n"
               "    \"nodes\": %u,\n"
               "    \"k\": %u,\n"
               "    \"threads\": 1,\n"
               "    \"engine_seconds\": %.6f,\n"
               "    \"celf_seconds\": %.6f,\n"
               "    \"rescan_seconds\": %.6f,\n"
               "    \"speedup_vs_celf\": %.2f,\n"
               "    \"speedup_vs_rescan\": %.2f,\n"
               "    \"outputs_identical\": true\n"
               "  },\n"
               "  \"rr_select\": {\n"
               "    \"rr_sets\": %u,\n"
               "    \"k\": %u,\n"
               "    \"threads\": 1,\n"
               "    \"engine_seconds\": %.6f,\n"
               "    \"rescan_seconds\": %.6f,\n"
               "    \"speedup_vs_rescan\": %.2f,\n"
               "    \"outputs_identical\": true\n"
               "  },\n"
               "  \"snapshot_restart\": {\n"
               "    \"worlds\": 64,\n"
               "    \"create_seconds\": %.6f,\n"
               "    \"legacy_restart_seconds\": %.6f,\n"
               "    \"snapshot_restart_seconds\": %.6f,\n"
               "    \"speedup\": %.1f,\n"
               "    \"snapshot_file_bytes\": %llu,\n"
               "    \"index_file_bytes\": %llu,\n"
               "    \"index_approx_bytes\": %llu,\n"
               "    \"first_query_identical\": true\n"
               "  },\n"
               "  \"update_stream\": {\n"
               "    \"nodes\": %u,\n"
               "    \"worlds\": %u,\n"
               "    \"updates\": %u,\n"
               "    \"per_update_seconds\": %.9f,\n"
               "    \"full_rebuild_seconds\": %.6f,\n"
               "    \"speedup_vs_rebuild\": %.1f,\n"
               "    \"mixed_stream_queries_per_second\": %.1f,\n"
               "    \"mixed_stream_queries\": %u,\n"
               "    \"mixed_stream_updates\": %u,\n"
               "    \"rebuild_equivalent\": true\n"
               "  },\n"
               "  \"scale_n\": {\n"
               "    \"worlds\": %u,\n"
               "    \"budget_bytes\": %llu,\n"
               "    \"max_n_materialized\": %u,\n"
               "    \"max_n_auto\": %u,\n"
               "    \"auto_hit_doubling_cap\": %s,\n"
               "    \"n_ratio\": %.1f,\n"
               "    \"materialized_bytes_per_world\": %llu,\n"
               "    \"labels_bytes_per_world\": %llu,\n"
               "    \"bytes_per_world_ratio\": %.1f,\n"
               "    \"materialized_sweep_seconds\": %.6f,\n"
               "    \"labels_sweep_seconds\": %.6f,\n"
               "    \"labels_vs_materialized_latency_ratio\": %.2f,\n"
               "    \"outputs_identical\": true\n"
               "  },\n"
               "  \"peak_rss_bytes\": %llu,\n"
               "  \"bytes_per_world\": %llu\n"
               "}\n",
               g.num_nodes(), closure_index->num_worlds(),
               static_cast<unsigned long long>(
                   closure_index->stats().closure_bytes),
               traversal_seconds, closure_seconds, speedup, eb.batch_size,
               eb.build_seconds, eb.per_query_seconds, eb.queries_per_rebuild,
               is.num_nodes, is.k, is.engine_seconds, is.celf_seconds,
               is.rescan_seconds, is.speedup_vs_celf, is.speedup_vs_rescan,
               rs.num_sets, rs.k, rs.engine_seconds, rs.rescan_seconds,
               rs.speedup_vs_rescan, sn.create_seconds,
               sn.legacy_restart_seconds, sn.snapshot_restart_seconds,
               sn.speedup,
               static_cast<unsigned long long>(sn.snapshot_file_bytes),
               static_cast<unsigned long long>(sn.index_file_bytes),
               static_cast<unsigned long long>(sn.index_approx_bytes),
               us.nodes, us.worlds, us.updates, us.per_update_seconds,
               us.rebuild_seconds, us.speedup, us.mixed_queries_per_second,
               us.mixed_queries, us.mixed_updates, sc.worlds,
               static_cast<unsigned long long>(sc.budget_bytes),
               sc.max_n_materialized, sc.max_n_auto,
               sc.auto_hit_doubling_cap ? "true" : "false",
               static_cast<double>(sc.max_n_auto) /
                   std::max(1u, sc.max_n_materialized),
               static_cast<unsigned long long>(sc.mat_bytes_per_world),
               static_cast<unsigned long long>(sc.label_bytes_per_world),
               static_cast<double>(sc.mat_bytes_per_world) /
                   std::max<uint64_t>(1, sc.label_bytes_per_world),
               sc.materialized_sweep_seconds, sc.labels_sweep_seconds,
               sc.latency_ratio,
               static_cast<unsigned long long>(peak_rss_bytes),
               static_cast<unsigned long long>(bytes_per_world));
  std::fclose(f);
  std::printf("sweep: traversal %.3fs, closure %.3fs, speedup %.2fx "
              "(wrote BENCH_micro.json)\n",
              traversal_seconds, closure_seconds, speedup);
  std::printf("engine: build %.3fs, per-query %.1fus "
              "(%.0f queries per rebuild)\n",
              eb.build_seconds, eb.per_query_seconds * 1e6,
              eb.queries_per_rebuild);
  std::printf("infmax select (n=%u, k=%u): engine %.4fs, celf %.4fs "
              "(%.1fx), rescan %.4fs (%.1fx)\n",
              is.num_nodes, is.k, is.engine_seconds, is.celf_seconds,
              is.speedup_vs_celf, is.rescan_seconds, is.speedup_vs_rescan);
  std::printf("rr select (sets=%u, k=%u): engine %.4fs, rescan %.4fs "
              "(%.1fx)\n",
              rs.num_sets, rs.k, rs.engine_seconds, rs.rescan_seconds,
              rs.speedup_vs_rescan);
  std::printf("snapshot restart: create %.3fs, legacy load+rebuild %.4fs, "
              "mmap %.4fs (%.1fx), file %.1f MiB vs ~%.1f MiB in memory\n",
              sn.create_seconds, sn.legacy_restart_seconds,
              sn.snapshot_restart_seconds, sn.speedup,
              static_cast<double>(sn.snapshot_file_bytes) / (1 << 20),
              static_cast<double>(sn.index_approx_bytes) / (1 << 20));
  std::printf("update stream (n=%u, l=%u): %.1fus per single-edge update vs "
              "%.3fs full rebuild (%.0fx); mixed stream %.0f queries/s "
              "(%u queries, %u updates)\n",
              us.nodes, us.worlds, us.per_update_seconds * 1e6,
              us.rebuild_seconds, us.speedup, us.mixed_queries_per_second,
              us.mixed_queries, us.mixed_updates);
  std::printf("scale_n (l=%u, 512 MiB budget): max n materialized-only %u, "
              "auto-tier %u%s; bytes/world materialized %llu vs labels %llu "
              "(%.0fx); labels sweep %.2fx the materialized sweep time\n",
              sc.worlds, sc.max_n_materialized, sc.max_n_auto,
              sc.auto_hit_doubling_cap ? " (doubling cap)" : "",
              static_cast<unsigned long long>(sc.mat_bytes_per_world),
              static_cast<unsigned long long>(sc.label_bytes_per_world),
              static_cast<double>(sc.mat_bytes_per_world) /
                  std::max<uint64_t>(1, sc.label_bytes_per_world),
              sc.latency_ratio);
  std::printf("memory: peak_rss_bytes=%llu bytes_per_world=%llu "
              "(over %llu worlds)\n",
              static_cast<unsigned long long>(peak_rss_bytes),
              static_cast<unsigned long long>(bytes_per_world),
              static_cast<unsigned long long>(suite_worlds));
}

}  // namespace
}  // namespace soi

// Expanded BENCHMARK_MAIN so the run can emit its metrics sidecar: the
// registry accumulates across all benchmark iterations, which makes the
// sidecar a phase-level complement to google-benchmark's per-op numbers.
int main(int argc, char** argv) {
  soi::WallTimer total_timer;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  soi::RunSweepComparison();
  benchmark::Shutdown();
  if (soi::obs::Enabled()) {
    const soi::Status ok = soi::obs::WriteMetricsJson(
        "BENCH_micro.metrics.json", total_timer.ElapsedSeconds());
    if (!ok.ok()) {
      std::fprintf(stderr, "metrics sidecar: %s\n", ok.ToString().c_str());
    } else {
      std::printf("wrote BENCH_micro.metrics.json\n");
    }
  }
  return 0;
}
