// Reproduces Figure 5: distribution of the expected cost rho(C*) of the
// typical cascade as a function of its size |C*| (bucketed). The paper's
// observation: disregarding very small cascades, larger typical cascades are
// more reliable (lower cost), and large cascades with large cost are
// practically impossible.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/typical_cascade.h"
#include "index/cascade_index.h"
#include "jaccard/jaccard.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"

int main() {
  using soi::TablePrinter;
  const auto config = soi::bench::BenchConfig::FromEnv();
  soi::bench::PrintBanner(
      "Figure 5", "Expected cost of C* vs its size (log2 size buckets)",
      config);

  uint64_t total_worlds = 0;
  for (const auto& name : config.configs) {
    const soi::Dataset dataset = soi::bench::LoadDatasetOrDie(name, config);
    const soi::ProbGraph& g = dataset.graph;

    soi::CascadeIndexOptions index_options;
    index_options.num_worlds = config.worlds;
    soi::Rng rng(config.seed + 3);
    auto index = soi::CascadeIndex::Build(g, index_options, &rng);
    if (!index.ok()) return 1;
    auto eval_index = soi::CascadeIndex::Build(g, index_options, &rng);
    if (!eval_index.ok()) return 1;
    total_worlds += index->num_worlds() + eval_index->num_worlds();

    soi::TypicalCascadeComputer computer(&*index);
    soi::CascadeIndex::Workspace eval_ws;

    // Bucket b holds sizes in [2^b, 2^(b+1)).
    constexpr int kBuckets = 16;
    soi::RunningStats per_bucket[kBuckets];

    const soi::NodeId limit =
        config.node_cap == 0
            ? g.num_nodes()
            : std::min<soi::NodeId>(config.node_cap, g.num_nodes());
    for (soi::NodeId v = 0; v < limit; ++v) {
      auto result = computer.Compute(v);
      if (!result.ok()) return 1;
      if (result->cascade.empty()) continue;
      double total = 0.0;
      for (uint32_t i = 0; i < eval_index->num_worlds(); ++i) {
        const auto cascade = eval_index->Cascade(v, i, &eval_ws).value();
        total += soi::JaccardDistance(cascade, result->cascade);
      }
      const double cost = total / eval_index->num_worlds();
      const int bucket = std::min(
          kBuckets - 1,
          static_cast<int>(std::log2(
              static_cast<double>(result->cascade.size()))));
      per_bucket[bucket].Add(cost);
    }

    TablePrinter table(
        {"size bucket", "nodes", "cost avg", "cost sd", "cost max"});
    for (int b = 0; b < kBuckets; ++b) {
      if (per_bucket[b].count() == 0) continue;
      char label[32];
      std::snprintf(label, sizeof(label), "[%d, %d)", 1 << b, 1 << (b + 1));
      table.AddRow({label, TablePrinter::Fmt(uint64_t{per_bucket[b].count()}),
                    TablePrinter::Fmt(per_bucket[b].mean(), 3),
                    TablePrinter::Fmt(per_bucket[b].stddev(), 3),
                    TablePrinter::Fmt(per_bucket[b].max(), 3)});
    }
    std::printf("--- %s ---\n", name.c_str());
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig 5): beyond the smallest buckets, cost "
      "decreases as |C*| grows; no bucket combines large size with large "
      "max cost.\n");
  soi::bench::ReportMemory(total_worlds);
  soi::bench::WriteMetricsSidecar("fig5");
  return 0;
}
