// Reproduces Figure 6: expected spread sigma(S) of the seed sets chosen by
// the standard greedy (InfMax_std) and by max-cover over typical cascades
// (InfMax_TC), for seed-set sizes |S| = 1..k, in all 12 settings.
//
// Both selection algorithms optimize on the SAME number of sampled worlds;
// the reported sigma is estimated on an independent set of fresh worlds
// (neither method grades its own homework). The paper's headline shape:
// InfMax_std wins for the first seeds, the curves cross, and InfMax_TC wins
// for large seed sets.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/typical_cascade.h"
#include "index/cascade_index.h"
#include "infmax/evaluate.h"
#include "infmax/greedy_std.h"
#include "infmax/infmax_tc.h"
#include "util/rng.h"
#include "util/table_printer.h"

int main() {
  using soi::TablePrinter;
  const auto config = soi::bench::BenchConfig::FromEnv();
  soi::bench::PrintBanner(
      "Figure 6",
      "Expected spread vs seed-set size: InfMax_std vs InfMax_TC", config);

  TablePrinter summary({"Config", "k", "std sigma(k)", "TC sigma(k)",
                        "TC/std", "crossover k"});
  uint64_t total_worlds = 0;
  for (const auto& name : config.configs) {
    const soi::Dataset dataset = soi::bench::LoadDatasetOrDie(name, config);
    const soi::ProbGraph& g = dataset.graph;
    const uint32_t k = std::min<uint32_t>(config.k, g.num_nodes());

    soi::CascadeIndexOptions index_options;
    index_options.num_worlds = config.worlds;
    soi::Rng rng(config.seed + 4);
    auto index = soi::CascadeIndex::Build(g, index_options, &rng);
    if (!index.ok()) return 1;
    total_worlds += index->num_worlds();

    // InfMax_std: the paper's implementation ([18]) estimates spread with
    // fresh Monte-Carlo simulations per evaluation; both methods get the
    // same sample budget (worlds) per estimate.
    soi::GreedyStdMcOptions std_options;
    std_options.k = k;
    std_options.mc_samples = config.worlds;
    soi::Rng std_rng(config.seed + 40);
    auto std_result = soi::InfMaxStdMc(g, std_options, &std_rng);
    if (!std_result.ok()) return 1;

    // InfMax_TC: Algorithm 2 then Algorithm 3.
    soi::TypicalCascadeComputer computer(&*index);
    auto typical = computer.ComputeAllFlat();
    if (!typical.ok()) return 1;
    soi::InfMaxTcOptions tc_options;
    tc_options.k = k;
    auto tc_result =
        soi::InfMaxTC(typical->cascades, g.num_nodes(), tc_options);
    if (!tc_result.ok()) return 1;

    // Unbiased evaluation of every prefix on fresh worlds.
    soi::Rng eval_rng(config.seed + 5);
    auto std_spreads =
        soi::EvaluatePrefixSpreads(g, std_result->seeds, config.eval_worlds,
                                   &eval_rng);
    auto tc_spreads = soi::EvaluatePrefixSpreads(
        g, tc_result->seeds, config.eval_worlds, &eval_rng);
    if (!std_spreads.ok() || !tc_spreads.ok()) return 1;

    // Print the series (the figure's two curves).
    std::printf("# series %s: |S| sigma_std sigma_TC\n", name.c_str());
    uint32_t crossover = 0;
    for (uint32_t i = 0; i < k; ++i) {
      if (crossover == 0 && (*tc_spreads)[i] > (*std_spreads)[i]) {
        crossover = i + 1;
      }
      if ((i + 1) % std::max(1u, k / 20) == 0 || i == 0 || i + 1 == k) {
        std::printf("%-12s %4u %10.1f %10.1f\n", name.c_str(), i + 1,
                    (*std_spreads)[i], (*tc_spreads)[i]);
      }
    }
    std::printf("\n");
    summary.AddRow(
        {name, TablePrinter::Fmt(uint64_t{k}),
         TablePrinter::Fmt(std_spreads->back(), 1),
         TablePrinter::Fmt(tc_spreads->back(), 1),
         TablePrinter::Fmt(tc_spreads->back() /
                               std::max(1e-9, std_spreads->back()),
                           3),
         crossover == 0 ? "none" : TablePrinter::Fmt(uint64_t{crossover})});
  }
  summary.Print(std::cout);
  std::printf(
      "\nExpected shape (paper Fig 6): InfMax_std leads for small |S|; "
      "curves cross; InfMax_TC leads for large |S| (TC/std > 1 at k).\n");
  soi::bench::ReportMemory(total_worlds);
  soi::bench::WriteMetricsSidecar("fig6");
  return 0;
}
