// Reproduces Table 2: size statistics (avg, sd, max) of the approximated
// typical cascade |C*| over the nodes of each dataset, plus the mean sampled
// cascade size for context. Paper reference values are in EXPERIMENTS.md.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/typical_cascade.h"
#include "index/cascade_index.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"

int main() {
  using soi::TablePrinter;
  const auto config = soi::bench::BenchConfig::FromEnv();
  soi::bench::PrintBanner("Table 2",
                          "Typical cascade size: avg / sd / max over nodes",
                          config);

  TablePrinter table({"Config", "nodes", "avg|C*|", "sd|C*|", "max|C*|",
                      "avg|S_i|", "index s", "sweep s"});
  uint64_t total_worlds = 0;
  for (const auto& name : config.configs) {
    const soi::Dataset dataset = soi::bench::LoadDatasetOrDie(name, config);
    const soi::ProbGraph& g = dataset.graph;

    soi::CascadeIndexOptions index_options;
    index_options.num_worlds = config.worlds;
    soi::Rng rng(config.seed + 1);
    auto index = soi::CascadeIndex::Build(g, index_options, &rng);
    if (!index.ok()) {
      std::fprintf(stderr, "index build failed for %s: %s\n", name.c_str(),
                   index.status().ToString().c_str());
      return 1;
    }
    total_worlds += index->num_worlds();

    soi::TypicalCascadeComputer computer(&*index);
    soi::RunningStats size_stats, sample_stats;
    const soi::NodeId limit =
        config.node_cap == 0
            ? g.num_nodes()
            : std::min<soi::NodeId>(config.node_cap, g.num_nodes());
    soi::WallTimer sweep_timer;
    for (soi::NodeId v = 0; v < limit; ++v) {
      auto result = computer.Compute(v);
      if (!result.ok()) {
        std::fprintf(stderr, "typical cascade failed for node %u: %s\n", v,
                     result.status().ToString().c_str());
        return 1;
      }
      size_stats.Add(static_cast<double>(result->cascade.size()));
      sample_stats.Add(result->mean_sample_size);
    }
    const double sweep_seconds = sweep_timer.ElapsedSeconds();

    table.AddRow({name, TablePrinter::Fmt(uint64_t{limit}),
                  TablePrinter::Fmt(size_stats.mean(), 1),
                  TablePrinter::Fmt(size_stats.stddev(), 1),
                  TablePrinter::Fmt(static_cast<uint64_t>(size_stats.max())),
                  TablePrinter::Fmt(sample_stats.mean(), 1),
                  TablePrinter::Fmt(index->stats().build_seconds, 2),
                  TablePrinter::Fmt(sweep_seconds, 2)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper Table 2): -G > -S and -F > -W typical-cascade "
      "sizes; sd comparable to or larger than avg.\n");
  soi::bench::ReportMemory(total_worlds);
  soi::bench::WriteMetricsSidecar("table2");
  return 0;
}
