// Baseline ablation (not a single paper figure, but the cross-method context
// the paper's §6-§7 discussion implies): expected spread of the seed sets
// chosen by every selection strategy in the library, evaluated on the same
// fresh worlds.
//
//   std-fixed : greedy on a fixed world sample (noise-free empirical optimum)
//   std-mc    : the paper's InfMax_std (CELF over fresh Monte-Carlo)
//   TC        : InfMax_TC (Algorithm 3, max-cover over spheres of influence)
//   RR        : reverse-reachable sketches (Borgs et al. / TIM)
//   degree    : top out-degree heuristic
//   random    : uniform random seeds

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/typical_cascade.h"
#include "index/cascade_index.h"
#include "infmax/baselines.h"
#include "infmax/evaluate.h"
#include "infmax/greedy_std.h"
#include "infmax/infmax_tc.h"
#include "infmax/rrset.h"
#include "util/rng.h"
#include "util/table_printer.h"

int main() {
  using soi::TablePrinter;
  auto config = soi::bench::BenchConfig::FromEnv();
  if (std::getenv("SOI_DATASETS") == nullptr) {
    config.configs = {"Digg-S", "Twitter-G", "NetHEPT-W", "Epinions-W",
                      "Slashdot-F"};
  }
  const uint32_t k = std::min(config.k, 50u);
  soi::bench::PrintBanner("Ablation",
                          "Expected spread by selection strategy (same "
                          "fresh-world evaluation)",
                          config);

  TablePrinter table({"Config", "k", "std-fixed", "std-mc", "TC", "RR",
                      "degree", "random"});
  uint64_t total_worlds = 0;
  for (const auto& name : config.configs) {
    const soi::Dataset dataset = soi::bench::LoadDatasetOrDie(name, config);
    const soi::ProbGraph& g = dataset.graph;
    const uint32_t kk = std::min<uint32_t>(k, g.num_nodes());

    soi::CascadeIndexOptions index_options;
    index_options.num_worlds = config.worlds;
    soi::Rng rng(config.seed + 20);
    auto index = soi::CascadeIndex::Build(g, index_options, &rng);
    if (!index.ok()) return 1;
    total_worlds += index->num_worlds();

    soi::GreedyStdOptions fixed_options;
    fixed_options.k = kk;
    auto fixed = soi::InfMaxStd(*index, fixed_options);
    if (!fixed.ok()) return 1;

    soi::GreedyStdMcOptions mc_options;
    mc_options.k = kk;
    mc_options.mc_samples = config.worlds;
    soi::Rng mc_rng(config.seed + 21);
    auto mc = soi::InfMaxStdMc(g, mc_options, &mc_rng);
    if (!mc.ok()) return 1;

    soi::TypicalCascadeComputer computer(&*index);
    auto typical = computer.ComputeAllFlat();
    if (!typical.ok()) return 1;
    soi::InfMaxTcOptions tc_options;
    tc_options.k = kk;
    auto tc = soi::InfMaxTC(typical->cascades, g.num_nodes(), tc_options);
    if (!tc.ok()) return 1;

    soi::RrSetOptions rr_options;
    rr_options.k = kk;
    rr_options.num_rr_sets = 50 * config.worlds;
    soi::Rng rr_rng(config.seed + 22);
    auto rr = soi::InfMaxRr(g, rr_options, &rr_rng);
    if (!rr.ok()) return 1;

    auto degree = soi::SelectTopDegree(g, kk);
    if (!degree.ok()) return 1;
    soi::Rng random_rng(config.seed + 23);
    auto random = soi::SelectRandom(g, kk, &random_rng);
    if (!random.ok()) return 1;

    auto evaluate = [&](const std::vector<soi::NodeId>& seeds) {
      soi::Rng eval_rng(config.seed + 24);
      auto spread =
          soi::EvaluateSpread(g, seeds, config.eval_worlds, &eval_rng);
      SOI_CHECK(spread.ok());
      return *spread;
    };
    table.AddRow({name, TablePrinter::Fmt(uint64_t{kk}),
                  TablePrinter::Fmt(evaluate(fixed->seeds), 1),
                  TablePrinter::Fmt(evaluate(mc->seeds), 1),
                  TablePrinter::Fmt(evaluate(tc->seeds), 1),
                  TablePrinter::Fmt(evaluate(rr->seeds), 1),
                  TablePrinter::Fmt(evaluate(*degree), 1),
                  TablePrinter::Fmt(evaluate(*random), 1)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: noise-free greedy variants (std-fixed/TC/RR) beat "
      "degree and random; std-mc (the paper's actual baseline) degrades "
      "where marginal gains are small relative to its Monte-Carlo noise "
      "(most visibly on the -W settings) — the saturation mechanism behind "
      "Figures 6-7.\n");
  soi::bench::ReportMemory(total_worlds);
  soi::bench::WriteMetricsSidecar("ablation");
  return 0;
}
