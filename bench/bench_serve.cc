// bench_serve: load/latency bench for the serving data plane.
//
// Three experiments against an in-process engine:
//
//   1. Slow-client interleaving — M pipelined clients, each pacing its
//      requests (think time between sends), against (a) the sequential
//      one-connection-at-a-time accept loop and (b) the epoll event loop.
//      The sequential server head-of-line blocks every client behind the
//      first, so its wall clock is ~M x the per-client time; the event loop
//      overlaps all the think time and should win by ~M.
//   2. Closed-loop latency — M clients issuing requests back-to-back;
//      per-request round trips aggregated into p50/p95/p99 and queries/sec.
//   3. Steady-state allocations — a global operator-new counter measures
//      heap allocations per request on the exact-tier hot path after
//      warmup. The in-situ parser, pooled request slots, arena-style
//      response buffers, and transparent metrics lookups are all designed
//      to make this 0.
//
// Writes BENCH_serve.json. Modes:
//   --smoke          tiny counts, same phases (CI-sized)
//   --connect PORT   skip the in-process server and run the closed-loop
//                    phase against an already-running soi_cli serve on
//                    127.0.0.1:PORT (exact-tier requests only); exits
//                    nonzero on any protocol mismatch. No JSON output.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "gen/generators.h"
#include "graph/prob_assign.h"
#include "graph/prob_graph.h"
#include "obs/metrics.h"
#include "runtime/parallel_for.h"
#include "service/engine.h"
#include "service/server.h"
#include "util/rng.h"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in the process bumps it.
// Client threads keep their steady-state loops allocation-free on purpose,
// so the delta across a measurement window is the server-side cost.

static std::atomic<uint64_t> g_allocs{0};

static void* CountedAlloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace soi::service {
namespace {

uint64_t NowUs() { return obs::NowNs() / 1000; }

void SleepUs(uint64_t us) {
  if (us == 0) return;
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(us / 1000000);
  ts.tv_nsec = static_cast<long>((us % 1000000) * 1000);
  ::nanosleep(&ts, nullptr);
}

int ConnectTo(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Allocation-free line framing over a socket: fixed buffer, memmove
// compaction, no strings.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  bool NextLine(std::string_view* line) {
    while (true) {
      for (size_t i = pos_; i < len_; ++i) {
        if (buf_[i] == '\n') {
          *line = std::string_view(buf_ + pos_, i - pos_);
          pos_ = i + 1;
          return true;
        }
      }
      if (pos_ > 0) {
        std::memmove(buf_, buf_ + pos_, len_ - pos_);
        len_ -= pos_;
        pos_ = 0;
      }
      if (len_ == sizeof(buf_)) return false;  // line longer than the buffer
      const ssize_t n = ::read(fd_, buf_ + len_, sizeof(buf_) - len_);
      if (n <= 0) return false;
      len_ += static_cast<size_t>(n);
    }
  }

 private:
  int fd_;
  char buf_[1 << 16];
  size_t pos_ = 0;
  size_t len_ = 0;
};

bool WriteFull(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

struct ClientPlan {
  // Request lines and the "{"id":N,"status":"ok"" prefix each response must
  // start with — both prebuilt before the measured loop so the client never
  // allocates in steady state.
  std::vector<std::string> requests;
  std::vector<std::string> expect_prefix;
};

// Builds one client's request stream: exact v1 spread, v2 exact spread,
// and (when the server has a sketch tier) v2 sketch spread, round-robin
// over a few single-node seed sets.
ClientPlan MakePlan(uint32_t client, uint32_t count, uint32_t num_nodes,
                    bool with_sketch) {
  ClientPlan plan;
  plan.requests.reserve(count);
  plan.expect_prefix.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const int64_t id = static_cast<int64_t>(client) * 1000000 + i;
    const uint32_t seed = (client * 7 + i * 13) % num_nodes;
    const int kind = static_cast<int>(i % (with_sketch ? 3 : 2));
    std::string line;
    if (kind == 0) {
      line = "{\"id\":" + std::to_string(id) + ",\"op\":\"spread\",\"seeds\":[" +
             std::to_string(seed) + "]}";
    } else if (kind == 1) {
      line = "{\"v\":2,\"id\":" + std::to_string(id) +
             ",\"op\":\"spread\",\"seeds\":[" + std::to_string(seed) +
             "],\"accuracy\":\"exact\"}";
    } else {
      line = "{\"v\":2,\"id\":" + std::to_string(id) +
             ",\"op\":\"spread\",\"seeds\":[" + std::to_string(seed) +
             "],\"accuracy\":\"sketch\"}";
    }
    line += '\n';
    plan.requests.push_back(std::move(line));
    plan.expect_prefix.push_back("{\"id\":" + std::to_string(id) +
                                 ",\"status\":\"ok\"");
  }
  return plan;
}

struct ClientResult {
  bool ok = false;
  uint64_t requests_done = 0;
  std::vector<uint64_t> latencies_us;  // empty unless recording
};

// Closed-loop client: send one request, wait for its response, optionally
// sleep `pace_us` of think time first. The measured loop allocates nothing.
void RunClient(uint16_t port, const ClientPlan& plan, uint32_t pace_us,
               bool record_latency, ClientResult* out) {
  const int fd = ConnectTo(port);
  if (fd < 0) return;
  LineReader reader(fd);
  if (record_latency) out->latencies_us.reserve(plan.requests.size());
  bool ok = true;
  for (size_t i = 0; i < plan.requests.size() && ok; ++i) {
    SleepUs(pace_us);
    const uint64_t t0 = NowUs();
    if (!WriteFull(fd, plan.requests[i])) {
      ok = false;
      break;
    }
    std::string_view line;
    if (!reader.NextLine(&line)) {
      ok = false;
      break;
    }
    if (record_latency) out->latencies_us.push_back(NowUs() - t0);
    if (line.substr(0, plan.expect_prefix[i].size()) != plan.expect_prefix[i]) {
      std::fprintf(stderr, "bench_serve: unexpected response for %s  got %.*s\n",
                   plan.requests[i].c_str(), static_cast<int>(line.size()),
                   line.data());
      ok = false;
      break;
    }
    ++out->requests_done;
  }
  ::shutdown(fd, SHUT_WR);
  ::close(fd);
  out->ok = ok;
}

// Runs `server` (a thread already listening on `port`) against M concurrent
// clients; returns total wall seconds, or -1 on any client failure.
double RunClients(uint16_t port, const std::vector<ClientPlan>& plans,
                  uint32_t pace_us, bool record_latency,
                  std::vector<ClientResult>* results) {
  results->assign(plans.size(), ClientResult{});
  const uint64_t t0 = NowUs();
  std::vector<std::thread> threads;
  threads.reserve(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    threads.emplace_back(RunClient, port, std::cref(plans[i]), pace_us,
                         record_latency, &(*results)[i]);
  }
  for (auto& t : threads) t.join();
  const double wall_s = static_cast<double>(NowUs() - t0) * 1e-6;
  for (const ClientResult& r : *results) {
    if (!r.ok) return -1.0;
  }
  return wall_s;
}

Engine BuildEngine(uint32_t num_nodes, uint64_t num_edges, uint32_t worlds,
                   uint32_t sketch_k) {
  Rng rng(1);
  auto topology =
      GenerateErdosRenyi(num_nodes, num_edges, /*undirected=*/false, &rng);
  SOI_CHECK(topology.ok());
  auto graph = AssignUniform(*topology, &rng);
  SOI_CHECK(graph.ok());
  EngineOptions options;
  options.index.num_worlds = worlds;
  options.seed = 1;
  options.sketch_k = sketch_k;
  auto engine = Engine::Create(std::move(*graph), options);
  SOI_CHECK(engine.ok());
  return std::move(*engine);
}

struct ServerHarness {
  std::thread thread;
  uint16_t port = 0;
  Status result = Status::OK();

  void Join() { thread.join(); }
};

// Starts `sequential ? ServeTcpSequential : ServeTcp` on an ephemeral port
// in a background thread and blocks until the socket is listening.
ServerHarness StartServer(Engine* engine, bool sequential,
                          uint32_t max_connections, uint32_t batch_window_us) {
  ServerHarness h;
  std::atomic<uint16_t> port{0};
  std::atomic<bool> listening{false};
  ServeOptions options;
  options.max_connections = max_connections;
  options.batch_window_us = batch_window_us;
  options.on_listening = [&port, &listening](uint16_t p) {
    port.store(p);
    listening.store(true);
  };
  Status* result = &h.result;
  h.thread = std::thread([engine, sequential, options, result]() {
    *result = sequential ? ServeTcpSequential(engine, 0, options)
                         : ServeTcp(engine, 0, options);
  });
  while (!listening.load()) SleepUs(100);
  h.port = port.load();
  return h;
}

uint64_t Percentile(std::vector<uint64_t>* sorted, double q) {
  if (sorted->empty()) return 0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(idx, sorted->size() - 1)];
}

struct BenchNumbers {
  uint32_t clients = 0;
  uint32_t per_client = 0;
  uint32_t pace_us = 0;
  double sequential_wall_s = 0;
  double epoll_wall_s = 0;
  double speedup = 0;
  uint32_t cl_clients = 0;
  uint32_t cl_per_client = 0;
  double cl_wall_s = 0;
  double cl_qps = 0;
  uint64_t p50_us = 0, p95_us = 0, p99_us = 0;
  uint32_t warmup = 0;
  uint32_t measured = 0;
  double allocs_per_request = 0;
};

int WriteJson(const BenchNumbers& n, uint32_t nodes, uint64_t edges,
              uint32_t worlds, uint32_t sketch_k) {
  std::string out;
  char buf[256];
  out += "{\n  \"schema\": \"soi-bench-serve-v1\",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"config\": {\"nodes\": %u, \"edges\": %llu, \"worlds\": "
                "%u, \"sketch_k\": %u},\n",
                nodes, static_cast<unsigned long long>(edges), worlds,
                sketch_k);
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "  \"slow_client_interleaving\": {\"clients\": %u, "
      "\"requests_per_client\": %u, \"pace_us\": %u, \"sequential_wall_s\": "
      "%.4f, \"epoll_wall_s\": %.4f, \"sequential_qps\": %.1f, \"epoll_qps\": "
      "%.1f, \"speedup\": %.2f},\n",
      n.clients, n.per_client, n.pace_us, n.sequential_wall_s, n.epoll_wall_s,
      n.sequential_wall_s > 0
          ? static_cast<double>(n.clients) * n.per_client / n.sequential_wall_s
          : 0.0,
      n.epoll_wall_s > 0
          ? static_cast<double>(n.clients) * n.per_client / n.epoll_wall_s
          : 0.0,
      n.speedup);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"closed_loop\": {\"clients\": %u, \"requests_per_client\": "
                "%u, \"wall_s\": %.4f, \"qps\": %.1f, \"latency_us\": "
                "{\"p50\": %llu, \"p95\": %llu, \"p99\": %llu}},\n",
                n.cl_clients, n.cl_per_client, n.cl_wall_s, n.cl_qps,
                static_cast<unsigned long long>(n.p50_us),
                static_cast<unsigned long long>(n.p95_us),
                static_cast<unsigned long long>(n.p99_us));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"allocations\": {\"warmup_requests\": %u, "
                "\"measured_requests\": %u, \"allocs_per_request\": %.4f}\n}\n",
                n.warmup, n.measured, n.allocs_per_request);
  out += buf;
  FILE* f = std::fopen("BENCH_serve.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_serve: cannot write BENCH_serve.json\n");
    return 1;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("wrote BENCH_serve.json\n");
  return 0;
}

// --connect mode: closed-loop correctness + throughput against an external
// server (exact-tier requests only; the server's graph just needs >= 2
// nodes). Exit nonzero on any mismatch.
int RunConnect(uint16_t port, bool smoke) {
  const uint32_t clients = smoke ? 3 : 6;
  const uint32_t per_client = smoke ? 20 : 200;
  std::vector<ClientPlan> plans;
  for (uint32_t c = 0; c < clients; ++c) {
    plans.push_back(MakePlan(c, per_client, /*num_nodes=*/2,
                             /*with_sketch=*/false));
  }
  std::vector<ClientResult> results;
  const double wall = RunClients(port, plans, /*pace_us=*/0,
                                 /*record_latency=*/true, &results);
  if (wall < 0) {
    std::fprintf(stderr, "bench_serve: connect run FAILED\n");
    return 1;
  }
  std::vector<uint64_t> lat;
  uint64_t total = 0;
  for (auto& r : results) {
    total += r.requests_done;
    lat.insert(lat.end(), r.latencies_us.begin(), r.latencies_us.end());
  }
  std::sort(lat.begin(), lat.end());
  std::printf(
      "connect: clients=%u requests=%llu wall_s=%.3f qps=%.1f p50_us=%llu "
      "p99_us=%llu\n",
      clients, static_cast<unsigned long long>(total), wall,
      static_cast<double>(total) / wall,
      static_cast<unsigned long long>(Percentile(&lat, 0.5)),
      static_cast<unsigned long long>(Percentile(&lat, 0.99)));
  return 0;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  int connect_port = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--connect" && i + 1 < argc) {
      connect_port = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: bench_serve [--smoke] [--connect PORT]\n");
      return 2;
    }
  }
  if (connect_port >= 0) {
    return RunConnect(static_cast<uint16_t>(connect_port), smoke);
  }

  // Deterministic runtime at 1 thread: the allocation phase must not pay
  // ParallelForChunks closure boxing, and results are identical anyway.
  SetGlobalThreads(1);
  const uint32_t nodes = smoke ? 128 : 512;
  const uint64_t edges = smoke ? 512 : 2048;
  const uint32_t worlds = smoke ? 16 : 64;
  const uint32_t sketch_k = 16;
  Engine engine = BuildEngine(nodes, edges, worlds, sketch_k);
  std::printf("bench_serve: engine ready (%u nodes, %u worlds)\n",
              engine.index().num_nodes(), engine.index().num_worlds());

  BenchNumbers n;

  // -- Phase 1: slow-client interleaving, sequential vs epoll --------------
  n.clients = smoke ? 4 : 6;
  n.per_client = smoke ? 10 : 40;
  n.pace_us = smoke ? 1000 : 2000;
  std::vector<ClientPlan> slow_plans;
  for (uint32_t c = 0; c < n.clients; ++c) {
    slow_plans.push_back(MakePlan(c, n.per_client, nodes, true));
  }
  {
    ServerHarness seq = StartServer(&engine, /*sequential=*/true, n.clients,
                                    /*batch_window_us=*/0);
    std::vector<ClientResult> results;
    n.sequential_wall_s =
        RunClients(seq.port, slow_plans, n.pace_us, false, &results);
    seq.Join();
    if (n.sequential_wall_s < 0 || !seq.result.ok()) {
      std::fprintf(stderr, "bench_serve: sequential phase FAILED (%s)\n",
                   seq.result.ToString().c_str());
      return 1;
    }
  }
  {
    ServerHarness ev = StartServer(&engine, /*sequential=*/false, n.clients,
                                   /*batch_window_us=*/0);
    std::vector<ClientResult> results;
    n.epoll_wall_s =
        RunClients(ev.port, slow_plans, n.pace_us, false, &results);
    ev.Join();
    if (n.epoll_wall_s < 0 || !ev.result.ok()) {
      std::fprintf(stderr, "bench_serve: epoll phase FAILED (%s)\n",
                   ev.result.ToString().c_str());
      return 1;
    }
  }
  n.speedup = n.epoll_wall_s > 0 ? n.sequential_wall_s / n.epoll_wall_s : 0;
  std::printf(
      "slow-client interleaving: clients=%u x %u, pace=%uus  sequential=%.3fs "
      "epoll=%.3fs  speedup=%.2fx\n",
      n.clients, n.per_client, n.pace_us, n.sequential_wall_s, n.epoll_wall_s,
      n.speedup);

  // -- Phase 2: closed-loop latency over the event loop --------------------
  n.cl_clients = smoke ? 3 : 6;
  n.cl_per_client = smoke ? 50 : 300;
  std::vector<ClientPlan> cl_plans;
  for (uint32_t c = 0; c < n.cl_clients; ++c) {
    cl_plans.push_back(MakePlan(c, n.cl_per_client, nodes, true));
  }
  {
    ServerHarness ev = StartServer(&engine, false, n.cl_clients, 0);
    std::vector<ClientResult> results;
    n.cl_wall_s = RunClients(ev.port, cl_plans, 0, true, &results);
    ev.Join();
    if (n.cl_wall_s < 0 || !ev.result.ok()) {
      std::fprintf(stderr, "bench_serve: closed-loop phase FAILED (%s)\n",
                   ev.result.ToString().c_str());
      return 1;
    }
    std::vector<uint64_t> lat;
    for (auto& r : results) {
      lat.insert(lat.end(), r.latencies_us.begin(), r.latencies_us.end());
    }
    std::sort(lat.begin(), lat.end());
    n.p50_us = Percentile(&lat, 0.5);
    n.p95_us = Percentile(&lat, 0.95);
    n.p99_us = Percentile(&lat, 0.99);
    n.cl_qps = static_cast<double>(n.cl_clients) * n.cl_per_client / n.cl_wall_s;
  }
  std::printf(
      "closed loop: clients=%u x %u  qps=%.1f  p50=%lluus p95=%lluus "
      "p99=%lluus\n",
      n.cl_clients, n.cl_per_client, n.cl_qps,
      static_cast<unsigned long long>(n.p50_us),
      static_cast<unsigned long long>(n.p95_us),
      static_cast<unsigned long long>(n.p99_us));

  // -- Phase 3: allocations per steady-state request (exact tier) ----------
  n.warmup = smoke ? 64 : 256;
  n.measured = smoke ? 128 : 512;
  {
    // One client, exact v1 spread only: after warmup every layer's pools are
    // warm and the delta divided by the request count is the per-request
    // allocation cost. The client's own loop is allocation-free by
    // construction, so the delta belongs to the serving thread.
    ClientPlan warm = MakePlan(0, n.warmup, nodes, false);
    ClientPlan meas = MakePlan(1, n.measured, nodes, false);
    // Rebuild both plans as v1-exact-only streams: kind alternates v1/v2
    // but both are exact, which is what we want.
    ServerHarness ev = StartServer(&engine, false, 1, 0);
    const int fd = ConnectTo(ev.port);
    if (fd < 0) {
      std::fprintf(stderr, "bench_serve: alloc-phase connect failed\n");
      return 1;
    }
    LineReader reader(fd);
    bool ok = true;
    uint64_t before = 0, after = 0;
    for (size_t i = 0; i < warm.requests.size() && ok; ++i) {
      std::string_view line;
      ok = WriteFull(fd, warm.requests[i]) && reader.NextLine(&line);
    }
    before = g_allocs.load(std::memory_order_relaxed);
    for (size_t i = 0; i < meas.requests.size() && ok; ++i) {
      std::string_view line;
      ok = WriteFull(fd, meas.requests[i]) && reader.NextLine(&line);
    }
    after = g_allocs.load(std::memory_order_relaxed);
    ::shutdown(fd, SHUT_WR);
    ::close(fd);
    ev.Join();
    if (!ok || !ev.result.ok()) {
      std::fprintf(stderr, "bench_serve: allocation phase FAILED\n");
      return 1;
    }
    n.allocs_per_request =
        static_cast<double>(after - before) / static_cast<double>(n.measured);
  }
  std::printf("allocations: %.4f per steady-state request (%u measured after "
              "%u warmup)\n",
              n.allocs_per_request, n.measured, n.warmup);

  return WriteJson(n, nodes, edges, worlds, sketch_k);
}

}  // namespace
}  // namespace soi::service

int main(int argc, char** argv) { return soi::service::Main(argc, argv); }
