// Reproduces Figure 4: distribution of (a) the time to compute the typical
// cascade C* of a node (cascade extraction from the index + Jaccard median,
// excluding index construction) and (b) the expected cost rho(C*) of the
// computed typical cascade, across nodes of each dataset.
//
// The paper reports per-node times from a Python implementation ("almost
// always well under 1 second"); shape — sub-linear tail, cost mostly under
// 0.4 with average around 0.2 — is the reproduction target.
//
// Additionally reports thread-count scaling of index construction (the
// runtime subsystem's headline workload) on a Digg-scale generated graph,
// and emits everything as machine-readable JSON (BENCH_fig4.json) so the
// perf trajectory is trackable across PRs.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/typical_cascade.h"
#include "index/cascade_index.h"
#include "jaccard/jaccard.h"
#include "runtime/parallel_for.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace {

struct NodeRow {
  std::string config;
  uint64_t nodes = 0;
  double t_p50 = 0, t_p95 = 0, t_max = 0;
  double cost_p50 = 0, cost_p95 = 0, cost_avg = 0;
};

struct ScaleRow {
  uint32_t threads = 0;
  double build_seconds = 0;
  double speedup = 1.0;
};

void WriteJson(const char* path, const soi::bench::BenchConfig& config,
               const std::string& scaling_config,
               const std::vector<NodeRow>& rows,
               const std::vector<ScaleRow>& scaling,
               const soi::bench::MemoryReport& memory) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"artifact\": \"fig4\",\n");
  std::fprintf(f,
               "  \"config\": {\"scale\": %g, \"worlds\": %u, "
               "\"eval_worlds\": %u, \"node_cap\": %u, \"seed\": %llu},\n",
               config.scale, config.worlds, config.eval_worlds,
               config.node_cap,
               static_cast<unsigned long long>(config.seed));
  std::fprintf(f, "  \"per_node\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const NodeRow& r = rows[i];
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"nodes\": %llu, "
                 "\"time_ms\": {\"p50\": %.6g, \"p95\": %.6g, \"max\": %.6g}, "
                 "\"cost\": {\"p50\": %.6g, \"p95\": %.6g, \"avg\": %.6g}}%s\n",
                 r.config.c_str(), static_cast<unsigned long long>(r.nodes),
                 r.t_p50, r.t_p95, r.t_max, r.cost_p50, r.cost_p95, r.cost_avg,
                 i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"index_build_scaling\": {\"dataset\": \"%s\", \"runs\": [\n",
               scaling_config.c_str());
  for (size_t i = 0; i < scaling.size(); ++i) {
    const ScaleRow& r = scaling[i];
    std::fprintf(f,
                 "    {\"threads\": %u, \"build_seconds\": %.6g, "
                 "\"speedup\": %.4g}%s\n",
                 r.threads, r.build_seconds, r.speedup,
                 i + 1 == scaling.size() ? "" : ",");
  }
  std::fprintf(f, "  ]},\n");
  std::fprintf(f,
               "  \"peak_rss_bytes\": %llu,\n  \"bytes_per_world\": %llu\n}\n",
               static_cast<unsigned long long>(memory.peak_rss_bytes),
               static_cast<unsigned long long>(memory.bytes_per_world));
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main() {
  using soi::TablePrinter;
  const auto config = soi::bench::BenchConfig::FromEnv();
  soi::bench::PrintBanner(
      "Figure 4",
      "Per-node time to compute C* (ms) and its hold-out expected cost",
      config);

  std::vector<NodeRow> rows;
  TablePrinter table({"Config", "nodes", "t p50 ms", "t p95 ms", "t max ms",
                      "cost p50", "cost p95", "cost avg"});
  uint64_t total_worlds = 0;
  for (const auto& name : config.configs) {
    const soi::Dataset dataset = soi::bench::LoadDatasetOrDie(name, config);
    const soi::ProbGraph& g = dataset.graph;

    soi::CascadeIndexOptions index_options;
    index_options.num_worlds = config.worlds;
    soi::Rng rng(config.seed + 2);
    auto index = soi::CascadeIndex::Build(g, index_options, &rng);
    if (!index.ok()) return 1;
    // Hold-out index for unbiased cost estimation (fresh worlds).
    auto eval_index = soi::CascadeIndex::Build(g, index_options, &rng);
    if (!eval_index.ok()) return 1;
    total_worlds += index->num_worlds() + eval_index->num_worlds();

    soi::TypicalCascadeComputer computer(&*index);
    soi::CascadeIndex::Workspace eval_ws;
    soi::EmpiricalDistribution time_ms, cost;
    const soi::NodeId limit =
        config.node_cap == 0
            ? g.num_nodes()
            : std::min<soi::NodeId>(config.node_cap, g.num_nodes());
    for (soi::NodeId v = 0; v < limit; ++v) {
      auto result = computer.Compute(v);
      if (!result.ok()) return 1;
      time_ms.Add(result->compute_seconds * 1e3);
      // Cost on held-out worlds, via the eval index's cascades.
      double total = 0.0;
      for (uint32_t i = 0; i < eval_index->num_worlds(); ++i) {
        const auto cascade = eval_index->Cascade(v, i, &eval_ws).value();
        total += soi::JaccardDistance(cascade, result->cascade);
      }
      cost.Add(total / eval_index->num_worlds());
    }
    NodeRow row;
    row.config = name;
    row.nodes = limit;
    row.t_p50 = time_ms.Quantile(0.5);
    row.t_p95 = time_ms.Quantile(0.95);
    row.t_max = time_ms.Quantile(1.0);
    row.cost_p50 = cost.Quantile(0.5);
    row.cost_p95 = cost.Quantile(0.95);
    row.cost_avg = cost.Summary().mean();
    rows.push_back(row);
    table.AddRow({name, TablePrinter::Fmt(uint64_t{limit}),
                  TablePrinter::Fmt(row.t_p50, 3),
                  TablePrinter::Fmt(row.t_p95, 3),
                  TablePrinter::Fmt(row.t_max, 3),
                  TablePrinter::Fmt(row.cost_p50, 3),
                  TablePrinter::Fmt(row.cost_p95, 3),
                  TablePrinter::Fmt(row.cost_avg, 3)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper Fig 4): times well under 1s per node; "
      "expected costs rarely exceed 0.4, average around 0.2.\n");

  // Thread-count scaling of index construction on a Digg-scale generated
  // graph. The built index is bit-identical at every thread count (worlds
  // draw from per-index streams), so this measures pure runtime speedup.
  const std::string scaling_config = "Digg-S";
  std::printf("\n--- index construction scaling (%s, %u worlds) ---\n",
              scaling_config.c_str(), config.worlds);
  const soi::Dataset scaling_dataset =
      soi::bench::LoadDatasetOrDie(scaling_config, config);
  TablePrinter scale_table({"threads", "build s", "speedup"});
  std::vector<ScaleRow> scaling;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    soi::SetGlobalThreads(threads);
    soi::CascadeIndexOptions index_options;
    index_options.num_worlds = config.worlds;
    soi::Rng rng(config.seed + 2);
    soi::WallTimer timer;
    auto index =
        soi::CascadeIndex::Build(scaling_dataset.graph, index_options, &rng);
    if (!index.ok()) return 1;
    total_worlds += index->num_worlds();
    ScaleRow row;
    row.threads = threads;
    row.build_seconds = timer.ElapsedSeconds();
    row.speedup = scaling.empty()
                      ? 1.0
                      : scaling.front().build_seconds / row.build_seconds;
    scaling.push_back(row);
    scale_table.AddRow({TablePrinter::Fmt(uint64_t{threads}),
                        TablePrinter::Fmt(row.build_seconds, 3),
                        TablePrinter::Fmt(row.speedup, 2)});
  }
  soi::SetGlobalThreads(config.threads);  // restore the configured budget
  scale_table.Print(std::cout);
  std::printf("(hardware concurrency on this machine: %u)\n",
              soi::ThreadPool::HardwareConcurrency());

  const soi::bench::MemoryReport memory =
      soi::bench::ReportMemory(total_worlds);
  WriteJson("BENCH_fig4.json", config, scaling_config, rows, scaling, memory);
  soi::bench::WriteMetricsSidecar("fig4");
  return 0;
}
