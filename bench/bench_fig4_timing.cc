// Reproduces Figure 4: distribution of (a) the time to compute the typical
// cascade C* of a node (cascade extraction from the index + Jaccard median,
// excluding index construction) and (b) the expected cost rho(C*) of the
// computed typical cascade, across nodes of each dataset.
//
// The paper reports per-node times from a Python implementation ("almost
// always well under 1 second"); shape — sub-linear tail, cost mostly under
// 0.4 with average around 0.2 — is the reproduction target.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/typical_cascade.h"
#include "index/cascade_index.h"
#include "jaccard/jaccard.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"

int main() {
  using soi::TablePrinter;
  const auto config = soi::bench::BenchConfig::FromEnv();
  soi::bench::PrintBanner(
      "Figure 4",
      "Per-node time to compute C* (ms) and its hold-out expected cost",
      config);

  TablePrinter table({"Config", "nodes", "t p50 ms", "t p95 ms", "t max ms",
                      "cost p50", "cost p95", "cost avg"});
  for (const auto& name : config.configs) {
    const soi::Dataset dataset = soi::bench::LoadDatasetOrDie(name, config);
    const soi::ProbGraph& g = dataset.graph;

    soi::CascadeIndexOptions index_options;
    index_options.num_worlds = config.worlds;
    soi::Rng rng(config.seed + 2);
    auto index = soi::CascadeIndex::Build(g, index_options, &rng);
    if (!index.ok()) return 1;
    // Hold-out index for unbiased cost estimation (fresh worlds).
    auto eval_index = soi::CascadeIndex::Build(g, index_options, &rng);
    if (!eval_index.ok()) return 1;

    soi::TypicalCascadeComputer computer(&*index);
    soi::CascadeIndex::Workspace eval_ws;
    soi::EmpiricalDistribution time_ms, cost;
    const soi::NodeId limit =
        config.node_cap == 0
            ? g.num_nodes()
            : std::min<soi::NodeId>(config.node_cap, g.num_nodes());
    for (soi::NodeId v = 0; v < limit; ++v) {
      auto result = computer.Compute(v);
      if (!result.ok()) return 1;
      time_ms.Add(result->compute_seconds * 1e3);
      // Cost on held-out worlds, via the eval index's cascades.
      double total = 0.0;
      for (uint32_t i = 0; i < eval_index->num_worlds(); ++i) {
        const auto cascade = eval_index->Cascade(v, i, &eval_ws);
        total += soi::JaccardDistance(cascade, result->cascade);
      }
      cost.Add(total / eval_index->num_worlds());
    }
    table.AddRow({name, TablePrinter::Fmt(uint64_t{limit}),
                  TablePrinter::Fmt(time_ms.Quantile(0.5), 3),
                  TablePrinter::Fmt(time_ms.Quantile(0.95), 3),
                  TablePrinter::Fmt(time_ms.Quantile(1.0), 3),
                  TablePrinter::Fmt(cost.Quantile(0.5), 3),
                  TablePrinter::Fmt(cost.Quantile(0.95), 3),
                  TablePrinter::Fmt(cost.Summary().mean(), 3)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper Fig 4): times well under 1s per node; "
      "expected costs rarely exceed 0.4, average around 0.2.\n");
  return 0;
}
