// Reproduces Table 1: dataset characteristics (|V|, |E|, type, how the
// influence probabilities were obtained) for all 12 experimental settings.
// Paper values (full-size crawls) are listed in EXPERIMENTS.md; this harness
// prints the synthetic stand-ins actually used by the other benches.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table_printer.h"

int main() {
  using soi::TablePrinter;
  const auto config = soi::bench::BenchConfig::FromEnv();
  soi::bench::PrintBanner("Table 1", "Dataset characteristics", config);

  TablePrinter table({"Config", "Network", "|V|", "|E| (arcs)", "Type",
                      "Probabilities", "avg p", "E[out-deg]"});
  for (const auto& name : config.configs) {
    const soi::Dataset dataset = soi::bench::LoadDatasetOrDie(name, config);
    const soi::ProbGraph& g = dataset.graph;
    double prob_sum = 0.0;
    for (soi::EdgeId e = 0; e < g.num_edges(); ++e) {
      prob_sum += g.EdgeProb(e);
    }
    const double avg_p =
        g.num_edges() == 0 ? 0.0 : prob_sum / g.num_edges();
    table.AddRow({dataset.config, dataset.network,
                  TablePrinter::Fmt(uint64_t{g.num_nodes()}),
                  TablePrinter::Fmt(uint64_t{g.num_edges()}),
                  dataset.directed ? "directed" : "undirected",
                  dataset.prob_source, TablePrinter::Fmt(avg_p, 4),
                  TablePrinter::Fmt(prob_sum / g.num_nodes(), 3)});
  }
  table.Print(std::cout);
  soi::bench::ReportMemory(0);
  soi::bench::WriteMetricsSidecar("table1");
  return 0;
}
